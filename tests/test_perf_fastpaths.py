"""Tests for the PR2 hot-path fast paths.

Covers the three behavioural surfaces the allocation-free refactor touched:

* ``cancellable=False`` scheduling through the simulator,
* ``record_envelopes=False`` runs (monitor counters must stay correct while
  the per-envelope log stays empty),
* per-network ``msg_id`` streams (deterministic without the deprecated
  global reset helper),

plus the seeded-equivalence oracle: three protocols x three workloads whose
decision/trace digests were captured on the pre-refactor tree (PR1, commit
dcb8a75).  Any change to event ordering, RNG consumption, envelope ids, or
trace payloads shows up here as a digest mismatch.
"""

import hashlib
import json

import pytest

from repro.core.messages import Phase1a
from repro.harness.executors import RunTask
from repro.harness.experiment import ExperimentSpec
from repro.harness.runner import run_scenario
from repro.net.message import Envelope, Era, reset_envelope_ids
from repro.net.network import Network
from repro.net.synchrony import EventualSynchrony
from repro.params import TimingParams
from repro.sim.rng import SeededRng
from repro.workloads.registry import default_workload_registry
from repro.workloads.stable import stable_scenario

PARAMS = TimingParams(delta=1.0, rho=0.01, epsilon=0.5)

# sha256 digests captured on the pre-refactor tree (see module docstring).
ORACLE_DIGESTS = {
    "modified-paxos/stable": "9cb940af944164acba32a0b056c953f898e8ea3ad13b43708bddc4f39e77efcd",
    "modified-paxos/partitioned-chaos": "4c0c7007400b795b2ffed590b219b198c4faddc911e67d08a23348bef8de13ff",
    "modified-paxos/lossy-chaos": "c11fdf1d9d5293c9dc1ac273d40e689706d24f0f88380c29e2f81b8ef053b37d",
    "traditional-paxos/stable": "f03fa429a9583e1844de6b7005e43ba5abd19614ed713df8dc20eca977347938",
    "traditional-paxos/partitioned-chaos": "3b7ab410be46c66e8b540f2b20d4b05ae5852327ba90899e4bfa35d21da0b452",
    "traditional-paxos/lossy-chaos": "28ed1355c0dd660aa9714eda8efb46b616685e46a675faadd7be4d66b5f06e32",
    "rotating-coordinator/stable": "92425bfd35ebea8bb10422706b31d4ae0ce4f932bf6b5c0872f9eb58357b786d",
    "rotating-coordinator/partitioned-chaos": "f4d9b11aa1c88852d3c3891c907cb8290589c448e4c00da780d4a9cc598d98c5",
    "rotating-coordinator/lossy-chaos": "6ad0549fb8399773c4813dd99f52bf49ca9d86938739e32e7276573f804a9b4f",
}

WORKLOAD_KWARGS = {
    "stable": {"n": 5, "seed": 7},
    "partitioned-chaos": {"n": 5, "seed": 7, "ts": 10.0},
    "lossy-chaos": {"n": 5, "seed": 7, "ts": 10.0},
}


def run_digest(protocol: str, workload: str) -> str:
    """Digest of everything observable about one seeded run."""
    scenario = default_workload_registry().create(
        workload, params=PARAMS, **WORKLOAD_KWARGS[workload]
    )
    result = run_scenario(scenario, protocol)
    sim = result.simulator
    payload = {
        "decisions": [
            (r.pid, repr(r.value), round(r.time, 9), r.incarnation)
            for r in sorted(sim.all_decisions, key=lambda r: (r.time, r.pid))
        ],
        "events_processed": sim.events_processed,
        "sent": sim.network.monitor.stats.sent,
        "delivered": sim.network.monitor.stats.delivered,
        "trace": [
            (round(e.time, 9), e.category, e.event, e.pid,
             sorted((k, repr(v)) for k, v in e.fields.items()))
            for e in sim.trace
        ],
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


class TestSeededEquivalence:
    @pytest.mark.parametrize("key", sorted(ORACLE_DIGESTS))
    def test_run_matches_pre_refactor_oracle(self, key):
        protocol, workload = key.split("/")
        assert run_digest(protocol, workload) == ORACLE_DIGESTS[key]


class TestCancellableFastPath:
    def test_schedule_without_handle_fires(self):
        scenario = stable_scenario(3, params=PARAMS, seed=1)
        result = run_scenario(scenario, "modified-paxos")
        sim = result.simulator
        calls = []
        handle = sim.schedule_at(sim.now() + 1.0, calls.append, args=("fired",),
                                 cancellable=False)
        assert handle is None
        sim.run(until=sim.now() + 2.0)
        assert calls == ["fired"]

    def test_schedule_in_fast_path(self):
        scenario = stable_scenario(3, params=PARAMS, seed=1)
        result = run_scenario(scenario, "modified-paxos")
        sim = result.simulator
        calls = []
        assert sim.schedule_in(0.5, calls.append, args=("x",), cancellable=False) is None
        sim.run(until=sim.now() + 1.0)
        assert calls == ["x"]


class TestEnvelopeLogOptOut:
    def _run(self, record_envelopes):
        scenario = stable_scenario(5, params=PARAMS, seed=3)
        return run_scenario(
            scenario, "modified-paxos", record_envelopes=record_envelopes
        )

    def test_log_disabled_keeps_monitor_counters(self):
        logged = self._run(True)
        unlogged = self._run(False)

        assert unlogged.simulator.network.envelopes == ()
        assert len(logged.simulator.network.envelopes) > 0

        on, off = logged.simulator.network.monitor.stats, unlogged.simulator.network.monitor.stats
        assert on.sent == off.sent > 0
        assert on.delivered == off.delivered > 0
        assert dict(on.by_kind) == dict(off.by_kind)
        assert dict(on.delivered_by_kind) == dict(off.delivered_by_kind)

    def test_log_disabled_runs_decide_identically(self):
        logged = self._run(True)
        unlogged = self._run(False)
        assert (
            {p: r.value for p, r in logged.simulator.decisions.items()}
            == {p: r.value for p, r in unlogged.simulator.decisions.items()}
        )
        assert logged.simulator.events_processed == unlogged.simulator.events_processed

    def test_envelopes_view_is_read_only(self):
        result = self._run(True)
        view = result.simulator.network.envelopes
        assert isinstance(view, tuple)

    def test_envelopes_view_is_cached_until_log_grows(self):
        result = self._run(True)
        network = result.simulator.network
        assert network.envelopes is network.envelopes  # O(1) repeat access
        before = network.envelopes
        network.send(Phase1a(mbal=99), src=0, dst=1)
        after = network.envelopes
        assert len(after) == len(before) + 1
        assert after[-1].message.mbal == 99

    def test_experiment_spec_defaults_log_off(self):
        spec = ExperimentSpec(workload="stable", protocols=("modified-paxos",), seeds=(1,),
                              base={"n": 3, "params": PARAMS})
        tasks = spec.tasks()
        assert all(task.record_envelopes is False for task in tasks)
        # Direct tasks keep the analysis-friendly default.
        assert RunTask(protocol="p", workload="w").record_envelopes is True


class TestPerNetworkMessageIds:
    def _network(self):
        network = Network(
            model=EventualSynchrony(ts=0.0, delta=1.0), rng=SeededRng(1, label="net")
        )

        class _Host:
            time = 0.0

            def now(self):
                return self.time

            def schedule_at(self, time, action, *, label="", args=(), cancellable=True):
                return None

            def deliver_envelope(self, envelope):
                return True

        network.bind(_Host())
        return network

    def test_fresh_networks_start_at_zero(self):
        for _ in range(2):  # back-to-back networks, no reset helper needed
            network = self._network()
            ids = [network.send(Phase1a(mbal=1), src=0, dst=1).msg_id for _ in range(3)]
            assert ids == [0, 1, 2]

    def test_concurrent_networks_have_independent_streams(self):
        a, b = self._network(), self._network()
        assert a.send(Phase1a(mbal=1), 0, 1).msg_id == 0
        assert a.send(Phase1a(mbal=1), 0, 1).msg_id == 1
        assert b.send(Phase1a(mbal=1), 0, 1).msg_id == 0

    def test_inject_shares_the_network_stream(self):
        network = self._network()
        sent = network.send(Phase1a(mbal=1), 0, 1)
        injected = network.inject(Phase1a(mbal=9), src=1, dst=0, deliver_time=5.0)
        assert injected.msg_id == sent.msg_id + 1
        assert injected.era is Era.PRE

    def test_reset_helper_warns_exactly_once_per_call(self):
        # The deprecation must fire on every call (exactly one warning per
        # call, none swallowed by the "default" filter's once-per-location
        # rule) so the remaining out-of-repo callers all see it.
        import warnings

        for _ in range(2):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                reset_envelope_ids()
            deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
            assert len(deprecations) == 1
            assert "per-Network" in str(deprecations[0].message)

    def test_no_other_in_repo_callers_remain(self):
        # The deprecation test above is the only place in the repository
        # that still invokes the helper (PR2 migrated every real caller to
        # per-network id streams).
        import subprocess
        import sys
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        hits = []
        for path in (root / "src").rglob("*.py"):
            text = path.read_text(encoding="utf-8")
            if "reset_envelope_ids(" in text and path.name != "message.py":
                hits.append(str(path))
        assert hits == []
        # And importing the package must not trigger the warning.
        code = (
            "import warnings; warnings.simplefilter('error', DeprecationWarning); "
            "import repro"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            env={"PYTHONPATH": str(root / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr.decode()

    def test_direct_envelopes_still_get_unique_fallback_ids(self):
        first = Envelope(message=Phase1a(mbal=1), src=0, dst=1, send_time=0.0, era=Era.POST)
        second = Envelope(message=Phase1a(mbal=1), src=0, dst=1, send_time=0.0, era=Era.POST)
        assert first.msg_id != second.msg_id
