"""Unit tests for message and envelope types (`repro.net.message`)."""

from repro.core.messages import Decision, Phase1a, Phase1b, Phase2a, Phase2b, Rejected, ballot_of
from repro.net.message import Envelope, Era, Message


class TestMessages:
    def test_kind_names_are_distinct(self):
        kinds = {cls.kind for cls in (Phase1a, Phase1b, Phase2a, Phase2b, Rejected, Decision)}
        assert len(kinds) == 6

    def test_messages_are_frozen(self):
        message = Phase1a(mbal=3)
        try:
            message.mbal = 5
            frozen = False
        except Exception:
            frozen = True
        assert frozen

    def test_describe_includes_fields(self):
        text = Phase2a(mbal=9, value="v").describe()
        assert "phase2a" in text
        assert "9" in text and "'v'" in text

    def test_ballot_of_reads_mbal(self):
        assert ballot_of(Phase1a(mbal=12)) == 12
        assert ballot_of(Decision(value="v")) == -1

    def test_base_message_describe(self):
        assert Message().describe() == "message()"


class TestEnvelope:
    def _envelope(self, **overrides):
        fields = dict(
            message=Phase1a(mbal=1), src=0, dst=1, send_time=2.0, era=Era.POST
        )
        fields.update(overrides)
        return Envelope(**fields)

    def test_latency_requires_delivery(self):
        envelope = self._envelope()
        assert envelope.latency is None
        envelope.deliver_time = 2.75
        assert envelope.latency == 0.75
        envelope.dropped = True
        assert envelope.latency is None

    def test_kind_comes_from_message(self):
        assert self._envelope().kind == "phase1a"

    def test_msg_ids_are_unique(self):
        first = self._envelope()
        second = self._envelope()
        assert first.msg_id != second.msg_id

    def test_describe_shows_fate(self):
        pending = self._envelope()
        assert "pending" in pending.describe()
        delivered = self._envelope(deliver_time=3.0)
        assert "deliver@" in delivered.describe()
        dropped = self._envelope(dropped=True)
        assert "dropped" in dropped.describe()

    def test_era_labels(self):
        assert Era.PRE.value.startswith("pre")
        assert Era.POST.value.startswith("post")
