"""Unit tests for drifting clocks (`repro.sim.clock`)."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import ClockConfig, DriftingClock


class TestClockConfig:
    def test_rejects_out_of_range_rho(self):
        with pytest.raises(ConfigurationError):
            ClockConfig(rho=-0.1)
        with pytest.raises(ConfigurationError):
            ClockConfig(rho=1.0)

    def test_local_timeout_guarantees_real_minimum(self):
        config = ClockConfig(rho=0.05)
        local = config.local_timeout_for(4.0)
        # The fastest admissible clock (rate 1 + rho) turns this local
        # duration into exactly the requested real minimum.
        fastest = DriftingClock(rate=1.05)
        assert fastest.real_duration(local) == pytest.approx(4.0)

    def test_real_upper_bound_on_slowest_clock(self):
        config = ClockConfig(rho=0.05)
        local = config.local_timeout_for(4.0)
        slowest = DriftingClock(rate=0.95)
        assert slowest.real_duration(local) == pytest.approx(config.real_upper_bound(local))

    def test_sigma_for_matches_paper_formula(self):
        config = ClockConfig(rho=0.01)
        assert config.sigma_for(4.0) == pytest.approx(4.0 * 1.01 / 0.99)

    def test_zero_rho_makes_sigma_equal_minimum(self):
        config = ClockConfig(rho=0.0)
        assert config.sigma_for(4.0) == pytest.approx(4.0)


class TestDriftingClock:
    def test_rejects_non_positive_rate(self):
        with pytest.raises(ConfigurationError):
            DriftingClock(rate=0.0)
        with pytest.raises(ConfigurationError):
            DriftingClock(rate=-1.0)

    def test_local_time_advances_at_rate(self):
        clock = DriftingClock(rate=2.0, start_real=10.0, start_local=0.0)
        assert clock.local_time(10.0) == 0.0
        assert clock.local_time(11.0) == pytest.approx(2.0)
        assert clock.local_time(13.5) == pytest.approx(7.0)

    def test_real_duration_inverse_of_local_duration(self):
        clock = DriftingClock(rate=1.25)
        local = clock.local_duration(8.0)
        assert clock.real_duration(local) == pytest.approx(8.0)

    def test_fast_clock_shortens_real_waits(self):
        fast = DriftingClock(rate=1.1)
        slow = DriftingClock(rate=0.9)
        assert fast.real_duration(4.0) < 4.0 < slow.real_duration(4.0)

    def test_negative_durations_rejected(self):
        clock = DriftingClock()
        with pytest.raises(ConfigurationError):
            clock.real_duration(-1.0)
        with pytest.raises(ConfigurationError):
            clock.local_duration(-1.0)

    def test_reset_restarts_local_time(self):
        clock = DriftingClock(rate=1.0)
        assert clock.local_time(5.0) == pytest.approx(5.0)
        clock.reset(real_time=5.0, local_time=0.0)
        assert clock.local_time(5.0) == pytest.approx(0.0)
        assert clock.local_time(7.0) == pytest.approx(2.0)

    def test_repr_shows_rate(self):
        assert "1.2" in repr(DriftingClock(rate=1.2))
