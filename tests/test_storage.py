"""Unit tests for stable storage (`repro.storage`)."""

import pytest

from repro.errors import StorageError
from repro.storage.journal import Journal
from repro.storage.stable import StableStore


class TestStableStoreBasics:
    def test_put_get_roundtrip(self):
        store = StableStore(owner=0)
        store.put("mbal", 17)
        assert store.get("mbal") == 17

    def test_get_default_for_missing_key(self):
        store = StableStore(owner=0)
        assert store.get("missing") is None
        assert store.get("missing", default=5) == 5

    def test_require_raises_for_missing_key(self):
        store = StableStore(owner=0)
        with pytest.raises(StorageError):
            store.require("missing")
        store.put("x", 1)
        assert store.require("x") == 1

    def test_non_string_keys_rejected(self):
        store = StableStore(owner=0)
        with pytest.raises(StorageError):
            store.put(42, "value")
        with pytest.raises(StorageError):
            store.update({3: "value"})

    def test_delete(self):
        store = StableStore(owner=0)
        store.put("x", 1)
        assert store.delete("x") is True
        assert store.delete("x") is False
        assert "x" not in store

    def test_contains_len_iter(self):
        store = StableStore(owner=0)
        store.put("b", 2)
        store.put("a", 1)
        assert "a" in store and "b" in store
        assert len(store) == 2
        assert list(store) == ["a", "b"]

    def test_update_writes_multiple_keys_as_one_write(self):
        store = StableStore(owner=0)
        before = store.write_count
        store.update({"x": 1, "y": 2})
        assert store.get("x") == 1 and store.get("y") == 2
        assert store.write_count == before + 1

    def test_counts_reads_and_writes(self):
        store = StableStore(owner=0)
        store.put("x", 1)
        store.get("x")
        store.get("x")
        assert store.write_count == 1
        assert store.read_count == 2


class TestCrashSemantics:
    def test_values_are_deep_copied_on_write(self):
        store = StableStore(owner=0)
        value = {"nested": [1, 2]}
        store.put("state", value)
        value["nested"].append(3)
        assert store.get("state") == {"nested": [1, 2]}

    def test_values_are_deep_copied_on_read(self):
        store = StableStore(owner=0)
        store.put("state", {"nested": [1]})
        read = store.get("state")
        read["nested"].append(99)
        assert store.get("state") == {"nested": [1]}

    def test_shallow_mode_can_be_requested(self):
        store = StableStore(owner=0, deep_copy=False)
        value = [1]
        store.put("v", value)
        value.append(2)
        assert store.get("v") == [1, 2]

    def test_snapshot_and_restore(self):
        store = StableStore(owner=0)
        store.put("a", 1)
        snapshot = store.snapshot()
        store.put("a", 2)
        store.put("b", 3)
        store.restore(snapshot)
        assert store.get("a") == 1
        assert "b" not in store

    def test_clear(self):
        store = StableStore(owner=0)
        store.put("a", 1)
        store.clear()
        assert len(store) == 0


class TestJournal:
    def test_append_and_replay(self):
        journal = Journal(owner=1)
        journal.append("mbal", 1)
        journal.append("aval", "x")
        journal.append("mbal", 2)
        assert journal.replay() == {"mbal": 2, "aval": "x"}
        assert len(journal) == 3

    def test_last_returns_most_recent_entry(self):
        journal = Journal(owner=1)
        journal.append("k", "old")
        journal.append("k", "new")
        entry = journal.last("k")
        assert entry is not None and entry.value == "new"
        assert journal.last("missing") is None

    def test_entries_are_immutable_copies(self):
        journal = Journal(owner=1)
        value = [1]
        journal.append("k", value)
        value.append(2)
        assert journal.replay() == {"k": [1]}

    def test_sequence_numbers_are_monotonic(self):
        journal = Journal(owner=1)
        entries = [journal.append("k", i) for i in range(5)]
        assert [entry.seq for entry in entries] == list(range(5))

    def test_non_string_keys_rejected(self):
        journal = Journal(owner=1)
        with pytest.raises(StorageError):
            journal.append(7, "x")

    def test_truncate_keeps_suffix(self):
        journal = Journal(owner=1)
        for i in range(6):
            journal.append("k", i)
        dropped = journal.truncate(keep_last=2)
        assert dropped == 4
        assert len(journal) == 2
        assert journal.replay() == {"k": 5}

    def test_truncate_rejects_negative(self):
        journal = Journal(owner=1)
        with pytest.raises(StorageError):
            journal.truncate(-1)
