"""CLI tests for the `results` command group and `experiments --store/--resume`."""

import json

import pytest

from helpers import make_run_record
from repro.cli import main
from repro.results import JsonlStore, SqliteStore


@pytest.fixture
def store_path(tmp_path):
    """A small jsonl store with three records across two protocols."""
    store = JsonlStore(tmp_path / "runs.jsonl")
    store.put(make_run_record(protocol="modified-paxos", workload="partitioned-chaos",
                              n=3, seed=1, lag=2.0, key="k/mp/1"))
    store.put(make_run_record(protocol="modified-paxos", workload="partitioned-chaos",
                              n=5, seed=2, lag=3.0, key="k/mp/2"))
    store.put(make_run_record(protocol="traditional-paxos", workload="obsolete-ballots",
                              n=5, seed=1, lag=8.0, key="k/tp/1"))
    store.flush()
    return str(tmp_path / "runs.jsonl")


class TestResultsLs:
    def test_lists_every_record(self, store_path, capsys):
        assert main(["results", "ls", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "k/mp/1" in out and "k/tp/1" in out
        assert "3 records (jsonl)" in out

    def test_empty_store(self, tmp_path, capsys):
        assert main(["results", "ls", "--store", str(tmp_path / "empty.jsonl")]) == 0
        assert "store is empty" in capsys.readouterr().out

    def test_unknown_backend_suffix(self, tmp_path, capsys):
        assert main(["results", "ls", "--store", str(tmp_path / "runs.txt")]) == 2
        assert "backend" in capsys.readouterr().out


class TestResultsShow:
    def test_report_rendering(self, store_path, capsys):
        assert main(["results", "show", "k/mp/1", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "run record: k/mp/1" in out
        assert "protocol=modified-paxos" in out
        assert "decisions" in out

    def test_json_rendering(self, store_path, capsys):
        assert main(["results", "show", "k/tp/1", "--store", store_path, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["key"] == "k/tp/1"
        assert data["schema_version"] == 1

    def test_missing_key(self, store_path, capsys):
        assert main(["results", "show", "nope", "--store", store_path]) == 1
        assert "no record" in capsys.readouterr().out


class TestResultsQuery:
    def test_filter_by_protocol(self, store_path, capsys):
        assert main(["results", "query", "--store", store_path,
                     "--protocol", "modified-paxos"]) == 0
        out = capsys.readouterr().out
        assert "2 matching records" in out and "k/tp/1" not in out

    def test_filter_by_tag(self, store_path, capsys):
        assert main(["results", "query", "--store", store_path, "--tag", "seed=2"]) == 0
        out = capsys.readouterr().out
        assert "1 matching records" in out and "k/mp/2" in out

    def test_filter_by_reserved_tag_names(self, store_path, capsys):
        """Tags named like query parameters (every record has a 'protocol' tag)."""
        assert main(["results", "query", "--store", store_path,
                     "--tag", "protocol=traditional-paxos"]) == 0
        out = capsys.readouterr().out
        assert "1 matching records" in out and "k/tp/1" in out

    def test_json_output(self, store_path, capsys):
        assert main(["results", "query", "--store", store_path,
                     "--workload", "obsolete-ballots", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert [entry["key"] for entry in data] == ["k/tp/1"]

    def test_bad_tag_filter(self, store_path, capsys):
        assert main(["results", "query", "--store", store_path, "--tag", "nonsense"]) == 2
        assert "KEY=VALUE" in capsys.readouterr().out


class TestResultsExport:
    def test_csv_to_file(self, store_path, tmp_path, capsys):
        out_path = tmp_path / "export.csv"
        assert main(["results", "export", "--store", store_path,
                     "--format", "csv", "--out", str(out_path)]) == 0
        lines = out_path.read_text().strip().splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("key,protocol")

    def test_json_to_stdout(self, store_path, capsys):
        assert main(["results", "export", "--store", store_path]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data) == 3


class TestResultsDiff:
    def test_diff_two_stores(self, store_path, tmp_path, capsys):
        other = SqliteStore(tmp_path / "other.sqlite")
        other.put(make_run_record(protocol="modified-paxos", workload="partitioned-chaos",
                                  n=3, seed=1, lag=2.5, key="k/mp/1"))
        other.close()
        assert main(["results", "diff", store_path, str(tmp_path / "other.sqlite")]) == 0
        out = capsys.readouterr().out
        assert "modified-paxos" in out and "max_lag_diff" in out
        assert "obsolete-ballots" in out  # group missing on side B still listed


class TestExperimentsStoreFlags:
    def test_store_and_resume_round_trip(self, tmp_path, capsys):
        store = str(tmp_path / "campaign.jsonl")
        assert main(["experiments", "--scale", "smoke", "--experiment", "E7",
                     "--out", str(tmp_path / "out1"), "--store", store]) == 0
        first = capsys.readouterr().out
        assert "4 records" in first
        assert main(["experiments", "--scale", "smoke", "--experiment", "E7",
                     "--out", str(tmp_path / "out2"), "--store", store, "--resume"]) == 0
        assert (tmp_path / "out1" / "E7.txt").read_bytes() == \
            (tmp_path / "out2" / "E7.txt").read_bytes()

    def test_resume_without_store_rejected(self, tmp_path, capsys):
        assert main(["experiments", "--scale", "smoke", "--experiment", "E7",
                     "--out", str(tmp_path), "--resume"]) == 2
        assert "--store" in capsys.readouterr().out

    def test_unknown_store_suffix_is_a_clean_error(self, tmp_path, capsys):
        assert main(["experiments", "--scale", "smoke", "--experiment", "E7",
                     "--out", str(tmp_path), "--store", str(tmp_path / "runs.txt")]) == 2
        assert "backend" in capsys.readouterr().out
