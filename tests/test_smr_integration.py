"""Integration tests of the SMR layer: end-to-end replication through the simulator."""

import pytest

from repro.core.timing import decision_bound
from repro.faults.plan import FaultPlan
from repro.smr.metrics import check_log_consistency
from repro.smr.runner import run_smr
from repro.smr.state_machine import AppendOnlyLedger
from repro.smr.workload import CommandSchedule, uniform_schedule
from repro.workloads.chaos import partitioned_chaos_scenario
from repro.workloads.stable import stable_scenario

from tests.helpers import make_params

PARAMS = make_params(rho=0.01)


class TestStableReplication:
    def test_all_commands_replicated_and_states_agree(self):
        scenario = stable_scenario(5, params=PARAMS, seed=1, max_time=300.0)
        schedule = uniform_schedule(5, num_commands=15, start=10.0, interval=1.0)
        result = run_smr(scenario, schedule)
        assert result.all_commands_learned_everywhere
        assert result.replicas_agree
        assert result.consistency_checks > 0
        assert all(length >= 15 for length in result.prefix_lengths.values())

    def test_stable_case_latency_is_a_few_message_delays(self):
        """The paper's 'three message delays in the stable case' claim (C6)."""
        scenario = stable_scenario(5, params=PARAMS, seed=2, max_time=300.0)
        # Submit at the established leader (the owner of the highest initial
        # ballot, process n-1), measuring the pure fast path.
        schedule = uniform_schedule(5, num_commands=10, start=10.0, interval=1.0, target_pid=4)
        result = run_smr(scenario, schedule)
        assert result.all_commands_learned_everywhere
        # Global learning within 3 maximum message delays; typical delays are
        # ~0.55 delta so this is also about 3 average delays.
        assert result.worst_global_latency() <= 3.0 * PARAMS.delta
        assert result.worst_submitter_latency() <= 2.0 * PARAMS.delta

    def test_forwarded_commands_cost_at_most_one_extra_delay(self):
        scenario = stable_scenario(5, params=PARAMS, seed=3, max_time=300.0)
        schedule = uniform_schedule(5, num_commands=10, start=10.0, interval=1.0, target_pid=0)
        result = run_smr(scenario, schedule)
        assert result.all_commands_learned_everywhere
        assert result.worst_global_latency() <= 4.0 * PARAMS.delta

    def test_ledger_replicas_apply_identical_sequences(self):
        scenario = stable_scenario(5, params=PARAMS, seed=4, max_time=300.0)
        schedule = uniform_schedule(5, num_commands=12, start=10.0, interval=0.5)
        result = run_smr(scenario, schedule, machine_factory=AppendOnlyLedger)
        assert result.replicas_agree

    def test_no_commands_is_a_quiet_system(self):
        scenario = stable_scenario(3, params=PARAMS, seed=5, max_time=40.0)
        result = run_smr(scenario, CommandSchedule())
        assert result.commands == {}
        assert check_log_consistency(result.simulator) >= 0


class TestReplicationUnderChaos:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_commands_submitted_before_stability_replicate_after_it(self, seed):
        scenario = partitioned_chaos_scenario(7, params=PARAMS, ts=8.0, seed=seed)
        survivors = scenario.deciders()
        schedule = uniform_schedule(
            7, num_commands=6, start=1.0, interval=1.0, target_pid=survivors[0]
        )
        result = run_smr(scenario, schedule)
        assert result.all_commands_learned_everywhere
        assert result.replicas_agree
        # Everything is learned within the eventual-synchrony bound of TS
        # (commands were submitted before TS, so lag is measured against TS).
        for record in result.commands.values():
            learned = max(record.learned_times.values())
            assert learned - scenario.config.ts <= 2.0 * decision_bound(PARAMS)

    def test_post_stability_commands_have_small_latency(self):
        scenario = partitioned_chaos_scenario(5, params=PARAMS, ts=8.0, seed=3)
        survivors = scenario.deciders()
        schedule = uniform_schedule(
            5, num_commands=5, start=35.0, interval=1.0, target_pid=survivors[0]
        )
        result = run_smr(scenario, schedule)
        assert result.all_commands_learned_everywhere
        assert result.worst_global_latency() <= 8.0 * PARAMS.delta


class TestLeaderFailover:
    def test_leader_crash_before_stability_does_not_lose_commands(self):
        """Commands accepted by a leader that then crashes are recovered via phase 1."""
        params = PARAMS
        ts = 6.0
        scenario = stable_scenario(5, params=params, seed=7, max_time=400.0)
        # Rebuild as an eventually-synchronous scenario with a crash of the
        # initial leader (process 4, owner of the highest initial ballot)
        # shortly after it starts serving, before TS.
        chaos = partitioned_chaos_scenario(5, params=params, ts=ts, seed=7, with_crashes=False)
        chaos.fault_plan = FaultPlan().crash(4, 3.0)
        chaos.expected_deciders = [0, 1, 2, 3]
        schedule = uniform_schedule(5, num_commands=4, start=1.0, interval=0.4, target_pid=0)
        result = run_smr(chaos, schedule)
        assert result.replicas_agree
        expected = set(chaos.deciders())
        for record in result.commands.values():
            assert expected.issubset(record.learned_times.keys())
        assert scenario is not None  # silence linters about the unused stable scenario


class TestRestartedReplicaCatchUp:
    def test_replica_restarting_after_ts_catches_up_on_the_log(self):
        params = PARAMS
        ts = 8.0
        scenario = partitioned_chaos_scenario(5, params=params, ts=ts, seed=9, with_crashes=False)
        scenario.fault_plan = FaultPlan().crash(2, 2.0).restart(2, ts + 15.0)
        schedule = uniform_schedule(5, num_commands=6, start=1.0, interval=1.0, target_pid=0)
        result = run_smr(scenario, schedule)
        assert result.all_commands_learned_everywhere
        assert result.replicas_agree
        node = result.simulator.nodes[2]
        assert node.incarnation == 2
        assert result.prefix_lengths[2] >= 6
