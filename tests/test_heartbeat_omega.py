"""Tests for the heartbeat-based Ω and the Paxos variant that uses it."""

import pytest

from repro.consensus.paxos.heartbeat_paxos import HeartbeatPaxosBuilder, HeartbeatPaxosProcess
from repro.errors import ConfigurationError
from repro.harness.runner import run_scenario
from repro.oracle.heartbeat import Heartbeat, HeartbeatElector
from repro.workloads.chaos import partitioned_chaos_scenario
from repro.workloads.coordinator_faults import coordinator_crash_scenario
from repro.workloads.stable import stable_scenario

from tests.helpers import ContextHarness, make_params


def make_elector(pid=0, n=3, timeout_factor=2.5):
    harness = ContextHarness(pid=pid, n=n, params=make_params(rho=0.0))
    elector = HeartbeatElector(harness.ctx, timeout_factor=timeout_factor)
    elector.start()
    return harness, elector


class TestHeartbeatElector:
    def test_start_broadcasts_heartbeat_and_arms_timer(self):
        harness, elector = make_elector(pid=1)
        beats = harness.sent_of_kind("heartbeat")
        assert sorted(item.dst for item in beats) == [0, 2]
        assert "omega-heartbeat" in harness.timers
        assert elector.heartbeats_sent == 1

    def test_timer_resends_heartbeats(self):
        harness, elector = make_elector()
        harness.clear_sent()
        harness.timers.pop("omega-heartbeat", None)
        elector.on_timer("omega-heartbeat")
        assert harness.sent_of_kind("heartbeat")
        assert elector.heartbeats_sent == 2
        assert "omega-heartbeat" in harness.timers

    def test_without_any_heartbeats_trusts_only_itself(self):
        _, elector = make_elector(pid=2)
        assert elector.trusted() == {2}
        assert elector.leader() == 2
        assert elector.believes_self_leader()

    def test_hearing_lower_pid_changes_leader(self):
        harness, elector = make_elector(pid=2)
        elector.on_message(Heartbeat(sender=0))
        assert elector.leader() == 0
        assert not elector.believes_self_leader()

    def test_silence_beyond_timeout_evicts_a_process(self):
        harness, elector = make_elector(pid=2, timeout_factor=2.5)
        elector.on_message(Heartbeat(sender=0))
        harness.advance_local_time(2.0)
        assert 0 in elector.trusted()
        harness.advance_local_time(1.0)  # total 3.0 > timeout 2.5
        assert 0 not in elector.trusted()
        assert elector.leader() == 2

    def test_fresh_heartbeats_keep_trust(self):
        harness, elector = make_elector(pid=2)
        for _ in range(4):
            elector.on_message(Heartbeat(sender=1))
            harness.advance_local_time(1.0)
        assert 1 in elector.trusted()

    def test_message_and_timer_routing_predicates(self):
        _, elector = make_elector()
        assert elector.handles_message(Heartbeat(sender=0))
        assert not elector.handles_message(object())
        assert elector.handles_timer("omega-heartbeat")
        assert not elector.handles_timer("session")

    def test_parameter_validation(self):
        harness = ContextHarness(params=make_params())
        with pytest.raises(ConfigurationError):
            HeartbeatElector(harness.ctx, period_factor=0.0)
        with pytest.raises(ConfigurationError):
            HeartbeatElector(harness.ctx, period_factor=1.0, timeout_factor=1.5)


class TestHeartbeatPaxos:
    def test_builder_registered_and_creates_processes(self):
        builder = HeartbeatPaxosBuilder()
        assert isinstance(builder.create(0), HeartbeatPaxosProcess)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_stable_case_decides_safely(self, seed):
        params = make_params(rho=0.01)
        result = run_scenario(stable_scenario(5, params=params, seed=seed),
                              "traditional-paxos-heartbeat")
        assert result.decided_all
        assert result.safety.valid

    def test_decides_after_chaos_and_crashed_processes(self):
        params = make_params(rho=0.01)
        scenario = coordinator_crash_scenario(7, params=params, seed=3, num_faulty=2)
        result = run_scenario(scenario, "traditional-paxos-heartbeat")
        assert result.decided_all
        assert result.safety.valid

    def test_heartbeat_election_costs_little_extra_vs_omniscient(self):
        """The message-based election adds at most a few δ over the granted oracle."""
        params = make_params(rho=0.01)
        lags = {}
        for protocol in ("traditional-paxos", "traditional-paxos-heartbeat"):
            scenario = partitioned_chaos_scenario(5, params=params, ts=8.0, seed=4)
            result = run_scenario(scenario, protocol)
            assert result.decided_all
            lags[protocol] = result.max_lag_after_ts()
        assert lags["traditional-paxos-heartbeat"] <= lags["traditional-paxos"] + 6.0
