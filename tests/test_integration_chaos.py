"""Integration: the paper's headline claims under pre-stabilization chaos (E1/E4).

These are the tests that actually check the reproduction: after an
adversarial pre-``TS`` period (partitions, loss, deferred messages, crashes,
restarts), the modified algorithms decide within the analytic ``O(δ)`` bound
of the stabilization time, for every seed tried, at several system sizes —
while remaining safe.
"""

import pytest

from repro.analysis.invariants import check_session_entry_rule, check_unique_phase2a_value
from repro.core.timing import decision_bound
from repro.harness.runner import run_scenario
from repro.workloads.chaos import lossy_chaos_scenario, partitioned_chaos_scenario

from tests.helpers import make_params

PARAMS = make_params(rho=0.01)
BOUND = decision_bound(PARAMS)
TS = 8.0


class TestModifiedPaxosUnderChaos:
    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_decides_within_bound_after_partitioned_chaos(self, n, seed):
        scenario = partitioned_chaos_scenario(n, params=PARAMS, ts=TS, seed=seed)
        result = run_scenario(scenario, "modified-paxos")
        assert result.decided_all, f"undecided: {result.metrics.decisions.undecided}"
        assert result.safety.valid
        lag = result.max_lag_after_ts()
        assert lag is not None and lag <= BOUND

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_decides_within_bound_after_lossy_chaos(self, seed):
        scenario = lossy_chaos_scenario(7, params=PARAMS, ts=TS, seed=seed)
        result = run_scenario(scenario, "modified-paxos")
        assert result.decided_all
        assert result.safety.valid
        assert result.max_lag_after_ts() <= BOUND

    def test_lag_does_not_grow_with_n(self):
        """The heart of claim C1: post-TS decision lag is flat in N."""
        lags = {}
        for n in (3, 9, 15):
            scenario = partitioned_chaos_scenario(n, params=PARAMS, ts=TS, seed=5)
            result = run_scenario(scenario, "modified-paxos")
            lags[n] = result.max_lag_after_ts()
        assert all(lag is not None and lag <= BOUND for lag in lags.values())
        # Explicitly: the large system is not an O(N) factor slower.
        assert lags[15] <= lags[3] + 8.0 * PARAMS.delta

    def test_no_decision_before_stabilization_under_partition(self):
        scenario = partitioned_chaos_scenario(7, params=PARAMS, ts=TS, seed=4)
        result = run_scenario(scenario, "modified-paxos")
        for record in result.simulator.decisions.values():
            assert record.time >= TS

    def test_session_invariants_hold_on_chaos_traces(self):
        scenario = partitioned_chaos_scenario(7, params=PARAMS, ts=TS, seed=6)
        result = run_scenario(scenario, "modified-paxos")
        session_report = check_session_entry_rule(result.simulator.trace, 7)
        value_report = check_unique_phase2a_value(result.simulator.trace, 7)
        assert session_report.ok
        assert value_report.ok

    def test_sessions_stay_low_despite_long_chaos(self):
        """The majority-entry rule caps session numbers: chaos cannot inflate them."""
        scenario = partitioned_chaos_scenario(7, params=PARAMS, ts=20.0, seed=7)
        result = run_scenario(scenario, "modified-paxos")
        assert result.metrics.max_session is not None
        assert result.metrics.max_session <= 4

    @pytest.mark.parametrize("seed", [1, 2])
    def test_bound_holds_even_with_worst_case_post_ts_delays(self, seed):
        """Every post-TS delivery takes the full δ; the bound must still hold."""
        scenario = partitioned_chaos_scenario(
            7, params=PARAMS, ts=TS, seed=seed, worst_case_post_delays=True
        )
        result = run_scenario(scenario, "modified-paxos")
        assert result.decided_all
        assert result.safety.valid
        lag = result.max_lag_after_ts()
        assert lag is not None and lag <= BOUND
        # Worst-case delays are genuinely slower than the random-delay runs.
        relaxed = run_scenario(
            partitioned_chaos_scenario(7, params=PARAMS, ts=TS, seed=seed), "modified-paxos"
        )
        assert lag >= relaxed.max_lag_after_ts()


class TestModifiedBConsensusUnderChaos:
    @pytest.mark.parametrize("n", [3, 5, 7])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_decides_quickly_and_safely(self, n, seed):
        scenario = partitioned_chaos_scenario(n, params=PARAMS, ts=TS, seed=seed)
        result = run_scenario(scenario, "modified-b-consensus")
        assert result.decided_all
        assert result.safety.valid
        # No closed-form bound in the paper; "about the same" as Modified
        # Paxos - allow a generous constant, still O(delta) and independent of N.
        assert result.max_lag_after_ts() <= 2.0 * BOUND

    def test_original_bconsensus_is_safe_under_chaos(self):
        scenario = partitioned_chaos_scenario(5, params=PARAMS, ts=TS, seed=3)
        result = run_scenario(scenario, "b-consensus")
        assert result.safety.valid
        assert result.decided_all


class TestBaselinesUnderChaosStaySafe:
    """The baselines may be slow, but they must never violate safety."""

    @pytest.mark.parametrize("protocol", ["traditional-paxos", "rotating-coordinator"])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_safety_under_partitioned_chaos(self, protocol, seed):
        scenario = partitioned_chaos_scenario(7, params=PARAMS, ts=TS, seed=seed)
        result = run_scenario(scenario, protocol)
        assert result.safety.valid
        assert result.decided_all
