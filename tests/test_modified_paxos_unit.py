"""Transition-level unit tests for Modified Paxos (`repro.core.modified_paxos`).

Each test drives a single process through the relevant rule of Section 4
using the :class:`tests.helpers.ContextHarness`, without a simulator.
"""

import pytest

from repro.core.messages import Decision, Phase1a, Phase1b, Phase2a, Phase2b
from repro.core.modified_paxos import ModifiedPaxosBuilder, ModifiedPaxosProcess
from repro.core.sessions import ballot_for

from tests.helpers import ContextHarness, make_params


def start_process(pid=0, n=3, value="v0", params=None):
    harness = ContextHarness(pid=pid, n=n, params=params or make_params())
    process = harness.start(ModifiedPaxosProcess(), initial_value=value)
    return harness, process


class TestStartup:
    def test_initial_ballot_is_pid_and_session_zero(self):
        _, process = start_process(pid=2, n=5)
        assert process.mbal == 2
        assert process.session == 0

    def test_start_broadcasts_phase1a_and_arms_timers(self):
        harness, _ = start_process(pid=1, n=3)
        assert sorted(harness.destinations_of_kind("phase1a")) == [0, 1, 2]
        assert "session" in harness.timers
        assert "keepalive" in harness.timers

    def test_session_timer_duration_is_at_least_four_delta(self):
        params = make_params(rho=0.05)
        harness, _ = start_process(params=params)
        assert harness.timers["session"] == pytest.approx(4.0 * 1.05)

    def test_restart_recovers_ballot_from_stable_storage(self):
        harness, process = start_process(pid=0, n=3)
        harness.deliver(Phase1a(mbal=7), sender=1)
        assert process.mbal == 7
        restarted = harness.restart(ModifiedPaxosProcess(), initial_value="v0")
        assert restarted.mbal == 7

    def test_restart_after_decision_reannounces_it(self):
        harness, process = start_process(pid=0, n=3)
        process.decide_once("chosen")
        restarted = harness.restart(ModifiedPaxosProcess(), initial_value="v0")
        assert restarted.decided_value == "chosen"
        assert harness.decisions[-1] == "chosen"
        assert harness.sent_of_kind("decision")


class TestPhase1:
    def test_higher_phase1a_adopts_ballot_and_promises_to_owner(self):
        harness, process = start_process(pid=0, n=3)
        harness.clear_sent()
        harness.deliver(Phase1a(mbal=7), sender=1)  # ballot 7 owned by 7 % 3 == 1
        assert process.mbal == 7
        promises = harness.sent_of_kind("phase1b")
        assert [item.dst for item in promises] == [1]
        assert promises[0].message.mbal == 7

    def test_equal_phase1a_still_answered(self):
        harness, process = start_process(pid=0, n=3)
        harness.deliver(Phase1a(mbal=6), sender=0)
        harness.clear_sent()
        harness.deliver(Phase1a(mbal=6), sender=2)
        assert harness.sent_of_kind("phase1b")

    def test_lower_phase1a_ignored_without_reject(self):
        harness, process = start_process(pid=0, n=3)
        harness.deliver(Phase1a(mbal=8), sender=2)
        harness.clear_sent()
        harness.deliver(Phase1a(mbal=4), sender=1)
        assert harness.sent == []  # no promise, and no "rejected" message exists

    def test_entering_new_session_rebroadcasts_phase1a(self):
        harness, process = start_process(pid=0, n=3)
        harness.clear_sent()
        harness.deliver(Phase1a(mbal=4), sender=1)  # session 1
        rebroadcasts = harness.sent_of_kind("phase1a")
        assert len(rebroadcasts) == 3
        assert all(item.message.mbal == 4 for item in rebroadcasts)
        assert [f for f in harness.emitted_events("session_enter") if f["session"] == 1]

    def test_same_session_ballot_increase_does_not_rebroadcast(self):
        harness, process = start_process(pid=0, n=5)
        harness.clear_sent()
        harness.deliver(Phase1a(mbal=3), sender=3)  # still session 0
        assert harness.sent_of_kind("phase1a") == []


class TestPhase2:
    def _gather_promises(self, harness, process, ballot):
        for sender in range(harness.n):
            harness.deliver(
                Phase1b(mbal=ballot, voted_bal=-1, voted_val=None), sender=sender
            )

    def test_quorum_of_promises_triggers_phase2a_with_own_proposal(self):
        harness, process = start_process(pid=0, n=3, value="mine")
        ballot = 0  # owned by pid 0, current from the start
        harness.clear_sent()
        self._gather_promises(harness, process, ballot)
        proposals = harness.sent_of_kind("phase2a")
        assert len(proposals) == 3  # broadcast to everyone, once
        assert proposals[0].message.value == "mine"

    def test_phase2a_carries_highest_previous_vote(self):
        harness, process = start_process(pid=0, n=3, value="mine")
        harness.clear_sent()
        harness.deliver(Phase1b(mbal=0, voted_bal=-1, voted_val=None), sender=0)
        harness.deliver(Phase1b(mbal=0, voted_bal=2, voted_val="theirs"), sender=1)
        proposals = harness.sent_of_kind("phase2a")
        assert proposals and proposals[0].message.value == "theirs"

    def test_promises_for_foreign_ballot_ignored(self):
        harness, process = start_process(pid=0, n=3)
        harness.clear_sent()
        for sender in range(3):
            harness.deliver(Phase1b(mbal=4, voted_bal=-1, voted_val=None), sender=sender)
        assert harness.sent_of_kind("phase2a") == []  # ballot 4 is owned by pid 1

    def test_phase2a_accepted_and_phase2b_broadcast(self):
        harness, process = start_process(pid=0, n=3)
        harness.clear_sent()
        harness.deliver(Phase2a(mbal=7, value="x"), sender=1)
        assert process.abal == 7 and process.aval == "x"
        acks = harness.sent_of_kind("phase2b")
        assert len(acks) == 3
        assert acks[0].message.value == "x"

    def test_stale_phase2a_rejected_silently(self):
        harness, process = start_process(pid=0, n=3)
        harness.deliver(Phase1a(mbal=9), sender=1)
        harness.clear_sent()
        harness.deliver(Phase2a(mbal=4, value="x"), sender=2)
        assert harness.sent_of_kind("phase2b") == []
        assert process.abal == -1

    def test_majority_of_phase2b_decides_and_announces(self):
        harness, process = start_process(pid=0, n=3)
        harness.clear_sent()
        harness.deliver(Phase2b(mbal=5, value="agreed"), sender=1)
        assert not process.has_decided
        harness.deliver(Phase2b(mbal=5, value="agreed"), sender=2)
        assert process.has_decided
        assert process.decided_value == "agreed"
        assert harness.decisions == ["agreed"]
        assert harness.sent_of_kind("decision")

    def test_phase2b_for_different_ballots_do_not_mix(self):
        harness, process = start_process(pid=0, n=3)
        harness.deliver(Phase2b(mbal=5, value="a"), sender=1)
        harness.deliver(Phase2b(mbal=8, value="a"), sender=2)
        assert not process.has_decided


class TestStartPhase1Rule:
    def test_session_zero_timeout_starts_next_session(self):
        harness, process = start_process(pid=1, n=3)
        harness.clear_sent()
        harness.fire_timer("session")
        # New ballot: session 1 owned by pid 1 -> ballot 4.
        assert process.mbal == ballot_for(1, 1, 3)
        assert process.session == 1
        assert harness.sent_of_kind("phase1a")
        assert harness.emitted_events("start_phase1")

    def test_timeout_in_higher_session_requires_majority_evidence(self):
        harness, process = start_process(pid=0, n=3)
        harness.deliver(Phase1a(mbal=4), sender=1)  # enter session 1 (heard only p1)
        harness.clear_sent()
        harness.fire_timer("session")
        assert process.session == 1  # blocked: no majority heard in session 1

    def test_majority_evidence_after_timeout_triggers_start(self):
        harness, process = start_process(pid=0, n=3)
        harness.deliver(Phase1a(mbal=4), sender=1)
        harness.fire_timer("session")
        assert process.session == 1
        # Second distinct sender with a session-1 ballot completes the majority.
        harness.deliver(Phase1b(mbal=5, voted_bal=-1, voted_val=None), sender=2)
        assert process.session == 2
        assert process.mbal == ballot_for(2, 0, 3)

    def test_entering_session_rearms_timer_and_clears_expiry(self):
        harness, process = start_process(pid=0, n=3)
        harness.fire_timer("session")
        assert "session" in harness.timers  # re-armed by the session entry
        harness.clear_sent()
        # Without a new expiry, more evidence must not trigger another start.
        harness.deliver(Phase1a(mbal=ballot_for(1, 1, 3)), sender=1)
        harness.deliver(Phase1b(mbal=ballot_for(1, 2, 3), voted_bal=-1, voted_val=None), sender=2)
        assert process.session == 1


class TestKeepAlive:
    def test_keepalive_rebroadcasts_when_idle(self):
        harness, process = start_process(pid=0, n=3)
        harness.fire_timer("keepalive")  # nothing sent since start? start sent 1a...
        # First fire observes the start broadcast, so nothing extra; second fire
        # with no traffic in between must re-send.
        harness.clear_sent()
        harness.fire_timer("keepalive")
        assert len(harness.sent_of_kind("phase1a")) == 3
        assert "keepalive" in harness.timers

    def test_keepalive_suppressed_after_recent_send(self):
        harness, process = start_process(pid=0, n=3)
        harness.fire_timer("keepalive")
        harness.deliver(Phase1a(mbal=4), sender=1)  # session entry re-broadcasts 1a
        harness.clear_sent()
        harness.fire_timer("keepalive")
        assert harness.sent_of_kind("phase1a") == []

    def test_keepalive_after_decision_rebroadcasts_decision(self):
        harness, process = start_process(pid=0, n=3)
        process.decide_once("v")
        harness.clear_sent()
        harness.fire_timer("keepalive")
        assert harness.sent_of_kind("decision")
        assert harness.sent_of_kind("phase1a") == []


class TestDecisionHandling:
    def test_decision_message_adopted(self):
        harness, process = start_process(pid=0, n=3)
        harness.deliver(Decision(value="theirs"), sender=2)
        assert process.decided_value == "theirs"

    def test_decided_process_answers_with_decision(self):
        harness, process = start_process(pid=0, n=3)
        harness.deliver(Decision(value="theirs"), sender=2)
        harness.clear_sent()
        harness.deliver(Phase1a(mbal=50), sender=1)
        replies = harness.sent_of_kind("decision")
        assert [item.dst for item in replies] == [1]
        assert process.mbal < 50  # the algorithm has stopped; no ballot adoption


class TestBuilder:
    def test_builder_creates_processes_and_invariants(self):
        builder = ModifiedPaxosBuilder()
        assert isinstance(builder.create(0), ModifiedPaxosProcess)
        assert "session-entry-rule" in builder.invariant_checks()
