"""Unit tests for the Ω and ◇S oracles (`repro.oracle.omega`, `.eventually_strong`)."""

import pytest

from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.net.synchrony import EventualSynchrony
from repro.oracle.eventually_strong import EventuallyStrongDetector
from repro.oracle.omega import OmegaOracle
from repro.sim.process import Process
from repro.sim.rng import SeededRng
from repro.sim.simulator import SimulationConfig, Simulator

from tests.helpers import make_params


class IdleProcess(Process):
    def on_start(self):
        pass

    def on_message(self, message, sender):
        pass

    def on_timer(self, name):
        pass


def make_simulator(n=5, ts=10.0, seed=0):
    params = make_params()
    config = SimulationConfig(n=n, params=params, ts=ts, seed=seed, max_time=1000.0)
    network = Network(
        model=EventualSynchrony(ts=ts, delta=params.delta), rng=SeededRng(seed, label="net")
    )
    sim = Simulator(config, lambda pid: IdleProcess(), network)
    sim.start()
    return sim


class TestOmega:
    def test_before_convergence_everyone_trusts_themselves_by_default(self):
        sim = make_simulator(ts=10.0)
        oracle = OmegaOracle(sim)
        assert [oracle.leader(pid) for pid in range(5)] == [0, 1, 2, 3, 4]

    def test_after_convergence_unique_lowest_alive_leader(self):
        sim = make_simulator(ts=10.0)
        oracle = OmegaOracle(sim)
        sim.crash(0)
        sim.schedule_at(oracle.convergence_time + 0.1, lambda: None)
        sim.run(until=oracle.convergence_time + 0.2)
        leaders = {oracle.leader(pid) for pid in range(1, 5)}
        assert leaders == {1}

    def test_convergence_time_is_ts_plus_delay(self):
        sim = make_simulator(ts=10.0)
        oracle = OmegaOracle(sim, stabilization_delay=2.5)
        assert oracle.convergence_time == 12.5

    def test_custom_pre_stability_behaviour(self):
        sim = make_simulator(ts=10.0)
        oracle = OmegaOracle(sim, pre_stability_leader=lambda pid, now: 3)
        assert oracle.leader(0) == 3

    def test_believes_self_leader(self):
        sim = make_simulator(ts=10.0)
        oracle = OmegaOracle(sim)
        assert oracle.believes_self_leader(2)

    def test_counts_queries(self):
        sim = make_simulator()
        oracle = OmegaOracle(sim)
        oracle.leader(0)
        oracle.leader(1)
        assert oracle.queries == 2

    def test_negative_delay_rejected(self):
        sim = make_simulator()
        with pytest.raises(ConfigurationError):
            OmegaOracle(sim, stabilization_delay=-1.0)


class TestEventuallyStrong:
    def test_before_convergence_suspects_everyone_else_by_default(self):
        sim = make_simulator(ts=10.0)
        detector = EventuallyStrongDetector(sim)
        assert detector.suspects(2) == {0, 1, 3, 4}

    def test_after_convergence_suspects_exactly_the_crashed(self):
        sim = make_simulator(ts=10.0)
        detector = EventuallyStrongDetector(sim)
        sim.crash(3)
        sim.schedule_at(detector.convergence_time + 0.1, lambda: None)
        sim.run(until=detector.convergence_time + 0.2)
        assert detector.suspects(0) == {3}
        assert detector.trusts(0, 1)
        assert not detector.trusts(0, 3)

    def test_custom_pre_stability_behaviour(self):
        sim = make_simulator(ts=10.0)
        detector = EventuallyStrongDetector(sim, pre_stability_suspects=lambda pid, now: set())
        assert detector.suspects(0) == set()

    def test_negative_delay_rejected(self):
        sim = make_simulator()
        with pytest.raises(ConfigurationError):
            EventuallyStrongDetector(sim, stabilization_delay=-0.5)
