"""Unit tests for the harness: runner, sweep, and table rendering."""

import pytest

from repro.consensus.values import RunOutcome
from repro.errors import ExperimentError
from repro.harness.runner import run_scenario
from repro.harness.sweep import sweep
from repro.harness.tables import ExperimentTable, render_table
from repro.workloads.stable import stable_scenario



class TestRenderTable:
    def test_alignment_and_formatting(self):
        text = render_table(
            ["name", "value"],
            [["alpha", 1.23456], ["b", None], ["c", 7]],
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-----" in lines[1]
        assert "1.235" in text
        assert "-" in lines[3]  # None rendered as a dash

    def test_indent(self):
        text = render_table(["x"], [[1]], indent="  ")
        assert all(line.startswith("  ") for line in text.splitlines())


class TestExperimentTable:
    def test_add_row_and_column(self):
        table = ExperimentTable(experiment="EX", title="t", headers=["n", "lag"])
        table.add_row(n=3, lag=1.5)
        table.add_row(n=5, lag=2.5)
        assert table.column("n") == [3, 5]
        assert table.column("lag") == [1.5, 2.5]

    def test_render_contains_title_rows_and_notes(self):
        table = ExperimentTable(
            experiment="E9", title="demo", headers=["a"], notes="shape note"
        )
        table.add_row(a=42)
        text = table.render()
        assert "E9: demo" in text
        assert "42" in text
        assert "shape note" in text


class TestRunner:
    def test_run_scenario_by_name_produces_full_result(self, params):
        scenario = stable_scenario(3, params=params, seed=5)
        result = run_scenario(scenario, "modified-paxos")
        assert result.protocol == "modified-paxos"
        assert result.decided_all
        assert result.safety.valid
        assert "session-entry-rule" in result.invariants
        assert result.metrics.messages_sent > 0
        assert result.max_lag_after_ts() is not None

    def test_run_scenario_with_builder_instance(self, params):
        from repro.core.modified_paxos import ModifiedPaxosBuilder

        scenario = stable_scenario(3, params=params, seed=5)
        result = run_scenario(scenario, ModifiedPaxosBuilder())
        assert result.protocol == "modified-paxos"
        assert result.decided_all

    def test_outcome_snapshot(self, params):
        scenario = stable_scenario(3, params=params, seed=5)
        result = run_scenario(scenario, "modified-paxos")
        outcome = result.outcome()
        assert isinstance(outcome, RunOutcome)
        assert outcome.all_decided
        assert outcome.n == 3
        assert len(outcome.decisions) == 3
        assert outcome.messages_sent == result.metrics.messages_sent

    def test_unknown_protocol_name_raises(self, params):
        from repro.errors import ConfigurationError

        scenario = stable_scenario(3, params=params, seed=5)
        with pytest.raises(ConfigurationError):
            run_scenario(scenario, "raft")

    def test_run_to_horizon_when_requested(self, params):
        scenario = stable_scenario(3, params=params, seed=5, max_time=30.0)
        result = run_scenario(scenario, "modified-paxos", run_until_decided=False)
        # Running past the decision is allowed and must stay safe.
        assert result.decided_all
        assert result.safety.valid


class TestSweep:
    def _factory(self, params):
        return lambda n, seed: stable_scenario(n, params=params, seed=seed)

    def test_sweep_collects_points_per_value(self, params):
        result = sweep(
            parameter="n",
            values=[3, 5],
            scenario_factory=self._factory(params),
            protocol="modified-paxos",
            seeds=(1, 2),
        )
        assert result.values() == [3, 5]
        assert all(len(point.results) == 2 for point in result.points)
        assert result.protocol == "modified-paxos"

    def test_sweep_metrics_helpers(self, params):
        result = sweep(
            parameter="n",
            values=[3],
            scenario_factory=self._factory(params),
            protocol="modified-paxos",
            seeds=(1, 2, 3),
        )
        point = result.point(3)
        lags = point.metric_values(lambda run: run.max_lag_after_ts())
        assert len(lags) == 3
        assert point.metric_mean(lambda run: run.max_lag_after_ts()) == pytest.approx(
            sum(lags) / 3
        )
        assert point.metric_max(lambda run: run.max_lag_after_ts()) == max(lags)

    def test_sweep_unknown_point_raises(self, params):
        result = sweep(
            parameter="n",
            values=[3],
            scenario_factory=self._factory(params),
            protocol="modified-paxos",
            seeds=(1,),
        )
        with pytest.raises(ExperimentError):
            result.point(99)

    def test_sweep_with_builder_factory(self, params):
        from repro.consensus.paxos.traditional import TraditionalPaxosBuilder

        result = sweep(
            parameter="n",
            values=[3],
            scenario_factory=self._factory(params),
            protocol=lambda: TraditionalPaxosBuilder(),
            seeds=(1,),
        )
        assert result.protocol == "traditional-paxos"
        assert result.point(3).results[0].decided_all
