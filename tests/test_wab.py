"""Unit tests for the weak ordering oracle endpoint (`repro.oracle.wab`)."""

from repro.oracle.lamport import LogicalTimestamp
from repro.oracle.wab import WabEndpoint, WabMessage

from tests.helpers import ContextHarness, make_params


def make_endpoint(pid=0, n=3, hold_real=2.0, rho=0.0):
    harness = ContextHarness(pid=pid, n=n, params=make_params(rho=rho))
    delivered = []

    def deliver(payload, origin, timestamp):
        delivered.append((payload, origin, timestamp))

    endpoint = WabEndpoint(harness.ctx, deliver=deliver, hold_real=hold_real)
    return harness, endpoint, delivered


class TestBroadcast:
    def test_broadcast_sends_to_everyone_including_self(self):
        harness, endpoint, _ = make_endpoint(pid=1, n=4)
        message = endpoint.broadcast("payload")
        assert sorted(harness.destinations_of_kind("wab")) == [0, 1, 2, 3]
        assert message.origin == 1
        assert message.payload == "payload"

    def test_timestamps_strictly_increase(self):
        _, endpoint, _ = make_endpoint()
        first = endpoint.broadcast("a")
        second = endpoint.broadcast("b")
        assert first.timestamp < second.timestamp

    def test_clock_persisted_across_restart(self):
        harness, endpoint, _ = make_endpoint()
        endpoint.broadcast("a")
        endpoint.broadcast("b")
        # New endpoint over the same storage (simulating a restart).
        rebuilt = WabEndpoint(harness.ctx, deliver=lambda *args: None)
        third = rebuilt.broadcast("c")
        assert third.timestamp.counter > 2 - 1  # never reuses old timestamps
        assert third.timestamp.counter >= 3


class TestHoldBackDelivery:
    def test_message_held_until_timer_fires(self):
        harness, endpoint, delivered = make_endpoint()
        incoming = WabMessage(timestamp=LogicalTimestamp(5, 2), origin=2, payload="x")
        endpoint.on_receive(incoming)
        assert delivered == []
        assert endpoint.held_count == 1
        # Exactly one oracle timer was armed with the 2-delta hold.
        wab_timers = [name for name in harness.timers if endpoint.handles_timer(name)]
        assert len(wab_timers) == 1
        assert harness.timers[wab_timers[0]] == 2.0

    def test_delivery_after_hold_in_timestamp_order(self):
        harness, endpoint, delivered = make_endpoint()
        late = WabMessage(timestamp=LogicalTimestamp(9, 1), origin=1, payload="late")
        early = WabMessage(timestamp=LogicalTimestamp(3, 2), origin=2, payload="early")
        endpoint.on_receive(late)
        endpoint.on_receive(early)
        harness.advance_local_time(2.0)
        for name in [name for name in list(harness.timers) if endpoint.handles_timer(name)]:
            harness.timers.pop(name)
            endpoint.on_timer(name)
        assert [payload for payload, _, _ in delivered] == ["early", "late"]

    def test_lower_timestamp_still_held_blocks_higher(self):
        harness, endpoint, delivered = make_endpoint()
        early = WabMessage(timestamp=LogicalTimestamp(1, 0), origin=0, payload="early")
        late = WabMessage(timestamp=LogicalTimestamp(2, 1), origin=1, payload="late")
        endpoint.on_receive(late)
        harness.advance_local_time(1.0)
        endpoint.on_receive(early)  # received later, lower timestamp, still held
        harness.advance_local_time(1.0)
        # At local time 2.0 only `late`'s hold expired, but it must not be
        # delivered ahead of the still-held lower-timestamped `early`.
        endpoint.on_timer("wab-release-1")
        assert delivered == []
        harness.advance_local_time(1.0)
        endpoint.on_timer("wab-release-2")
        assert [payload for payload, _, _ in delivered] == ["early", "late"]

    def test_duplicates_are_ignored(self):
        harness, endpoint, delivered = make_endpoint()
        message = WabMessage(timestamp=LogicalTimestamp(4, 1), origin=1, payload="x")
        endpoint.on_receive(message)
        endpoint.on_receive(message)
        assert endpoint.held_count == 1
        harness.advance_local_time(5.0)
        endpoint.on_timer("wab-release-1")
        assert len(delivered) == 1

    def test_receiving_updates_logical_clock(self):
        _, endpoint, _ = make_endpoint()
        endpoint.on_receive(WabMessage(timestamp=LogicalTimestamp(50, 2), origin=2, payload="x"))
        outgoing = endpoint.broadcast("y")
        assert outgoing.timestamp.counter > 50

    def test_hold_uses_rho_inflation(self):
        harness, endpoint, _ = make_endpoint(rho=0.05, hold_real=2.0)
        endpoint.on_receive(WabMessage(timestamp=LogicalTimestamp(1, 1), origin=1, payload="x"))
        wab_timers = [name for name in harness.timers if endpoint.handles_timer(name)]
        assert harness.timers[wab_timers[0]] == 2.0 * 1.05

    def test_handles_timer_only_for_own_names(self):
        _, endpoint, _ = make_endpoint()
        assert endpoint.handles_timer("wab-release-3")
        assert not endpoint.handles_timer("session")

    def test_counts(self):
        harness, endpoint, _ = make_endpoint()
        endpoint.broadcast("a")
        endpoint.on_receive(WabMessage(timestamp=LogicalTimestamp(1, 1), origin=1, payload="x"))
        harness.advance_local_time(3.0)
        endpoint.on_timer("wab-release-1")
        assert endpoint.broadcast_count == 1
        assert endpoint.delivered_count == 1
