"""Unit tests for run metrics and trace invariants (`repro.analysis`)."""

import pytest

from repro.analysis.invariants import (
    check_rotating_round_entry,
    check_session_entry_rule,
    check_single_session_leadership,
    check_unique_phase2a_value,
)
from repro.analysis.metrics import DecisionMetrics
from repro.analysis.trace import TraceRecorder
from repro.errors import InvariantViolation


class TestDecisionMetrics:
    def test_lag_clamped_at_zero_for_early_deciders(self):
        metrics = DecisionMetrics(ts=10.0, decision_times={0: 8.0, 1: 12.5})
        assert metrics.lag_after_ts(0) == 0.0
        assert metrics.lag_after_ts(1) == pytest.approx(2.5)
        assert metrics.lag_after_ts(7) is None

    def test_max_lag_over_selected_pids(self):
        metrics = DecisionMetrics(ts=10.0, decision_times={0: 11.0, 1: 14.0, 2: 9.0})
        assert metrics.max_lag_after_ts() == pytest.approx(4.0)
        assert metrics.max_lag_after_ts([0, 2]) == pytest.approx(1.0)

    def test_max_lag_none_if_requested_pid_undecided(self):
        metrics = DecisionMetrics(ts=10.0, decision_times={0: 11.0}, undecided=[1])
        assert metrics.max_lag_after_ts([0, 1]) is None

    def test_mean_lag(self):
        metrics = DecisionMetrics(ts=10.0, decision_times={0: 11.0, 1: 13.0})
        assert metrics.mean_lag_after_ts() == pytest.approx(2.0)
        assert DecisionMetrics(ts=0.0).mean_lag_after_ts() is None

    def test_all_decided_flag(self):
        assert DecisionMetrics(ts=0.0).all_decided
        assert not DecisionMetrics(ts=0.0, undecided=[3]).all_decided


def _session_trace(entries, starts):
    """Build a protocol trace from (time, pid, session) tuples."""
    trace = TraceRecorder()
    events = [(t, pid, s, "session_enter") for t, pid, s in entries]
    events += [(t, pid, s, "start_phase1") for t, pid, s in starts]
    for t, pid, session, event in sorted(events):
        trace.record(t, "protocol", event, pid=pid, session=session)
    return trace


class TestSessionEntryRule:
    def test_legal_history_passes(self):
        # All three processes enter session 1 before anyone starts session 2.
        trace = _session_trace(
            entries=[(0.0, 0, 0), (0.0, 1, 0), (0.0, 2, 0), (1.0, 0, 1), (1.1, 1, 1), (1.2, 2, 1)],
            starts=[(5.0, 0, 2)],
        )
        report = check_session_entry_rule(trace, n=3)
        assert report.ok
        assert report.checked == 1
        report.raise_if_violated()

    def test_premature_start_detected(self):
        # Only one process ever entered session 1, yet someone starts session 2.
        trace = _session_trace(
            entries=[(0.0, 0, 0), (0.0, 1, 0), (0.0, 2, 0), (1.0, 0, 1)],
            starts=[(2.0, 0, 2)],
        )
        report = check_session_entry_rule(trace, n=3)
        assert not report.ok
        with pytest.raises(InvariantViolation):
            report.raise_if_violated()

    def test_sessions_zero_and_one_unconstrained(self):
        trace = _session_trace(entries=[(0.0, 0, 0)], starts=[(1.0, 0, 1)])
        report = check_session_entry_rule(trace, n=3)
        assert report.ok
        assert report.checked == 0


class TestRotatingRoundEntry:
    def _round_trace(self, entries):
        trace = TraceRecorder()
        for t, pid, round_number, via in entries:
            trace.record(t, "protocol", "round_enter", pid=pid, round=round_number, via=via)
        return trace

    def test_timeout_entry_with_majority_passes(self):
        trace = self._round_trace(
            [
                (0.0, 0, 0, "start"),
                (0.0, 1, 0, "start"),
                (0.0, 2, 0, "start"),
                (4.0, 0, 1, "timeout"),
            ]
        )
        assert check_rotating_round_entry(trace, n=3).ok

    def test_timeout_entry_without_majority_fails(self):
        trace = self._round_trace([(0.0, 0, 0, "start"), (4.0, 0, 1, "timeout")])
        report = check_rotating_round_entry(trace, n=3)
        assert not report.ok

    def test_jump_entries_are_not_constrained(self):
        trace = self._round_trace([(0.0, 0, 0, "start"), (1.0, 0, 5, "jump")])
        assert check_rotating_round_entry(trace, n=3).ok


class TestPhase2aInvariants:
    def test_unique_value_per_ballot(self):
        trace = TraceRecorder()
        trace.record(1.0, "protocol", "phase2a", pid=0, ballot=5, value="v")
        trace.record(2.0, "protocol", "phase2a", pid=0, ballot=5, value="v")
        assert check_unique_phase2a_value(trace, n=3).ok

    def test_conflicting_values_detected(self):
        trace = TraceRecorder()
        trace.record(1.0, "protocol", "phase2a", pid=0, ballot=5, value="v")
        trace.record(2.0, "protocol", "phase2a", pid=1, ballot=5, value="w")
        assert not check_unique_phase2a_value(trace, n=3).ok

    def test_ownership_check(self):
        trace = TraceRecorder()
        trace.record(1.0, "protocol", "phase2a", pid=2, ballot=5, value="v")  # 5 % 3 == 2: ok
        assert check_single_session_leadership(trace, n=3).ok
        trace.record(2.0, "protocol", "phase2a", pid=1, ballot=6, value="v")  # 6 % 3 == 0: bad
        assert not check_single_session_leadership(trace, n=3).ok
