"""Round-trip and content-key tests for `repro.results.record` (PR 4).

The contract under test: every run the harness can produce freezes into a
:class:`RunRecord` that (a) survives ``from_dict(to_dict(r)) == r`` exactly,
(b) rebuilds the executor's outcome verbatim, and (c) sits under a content
key that is a pure function of the declarative task — identical across
processes and interpreter invocations.
"""

import json
import subprocess
import sys

import pytest

from helpers import make_params, make_run_record
from repro.consensus.values import RunOutcome
from repro.env.registry import default_environment_registry
from repro.errors import ResultSchemaError
from repro.harness.executors import RunTask, execute_task
from repro.results.record import (
    SCHEMA_VERSION,
    RunRecord,
    content_key_for_task,
    task_fingerprint,
)
from repro.workloads.registry import default_workload_registry

PARAMS = make_params()

# Workloads that need a specific protocol to exercise their scenario.
PROTOCOL_FOR = {
    "coordinator-crash": "rotating-coordinator",
    "obsolete-ballots": "traditional-paxos",
}

# Extra kwargs needed for workloads whose defaults do not apply at n=5.
EXTRA_KWARGS = {
    "environment": {"env": "stable"},
}


def workload_task(workload: str, **overrides) -> RunTask:
    kwargs = {"n": 5, "seed": 1, "params": PARAMS, **EXTRA_KWARGS.get(workload, {})}
    kwargs.update(overrides)
    return RunTask(
        protocol=PROTOCOL_FOR.get(workload, "modified-paxos"),
        workload=workload,
        workload_kwargs=kwargs,
        tags={"suite": "round-trip", "seed": kwargs["seed"]},
    )


class TestRoundTripEveryWorkload:
    """from_dict(to_dict(r)) == r for one real run of every registered workload."""

    @pytest.mark.parametrize("workload", default_workload_registry().names())
    def test_workload_record_round_trips(self, workload):
        task = workload_task(workload)
        outcome = execute_task(task)
        record = RunRecord.from_task(task, outcome)

        assert RunRecord.from_dict(record.to_dict()) == record
        assert RunRecord.from_json(record.to_json()) == record
        # The dict form must be pure JSON: a serialize/parse cycle is identity.
        assert json.loads(json.dumps(record.to_dict())) == record.to_dict()

    @pytest.mark.parametrize("workload", default_workload_registry().names())
    def test_workload_outcome_rebuilds_verbatim(self, workload):
        task = workload_task(workload)
        outcome = execute_task(task)
        record = RunRecord.from_task(task, outcome)
        assert record.to_outcome() == outcome

    def test_every_workload_is_covered(self):
        # The registry drives the parametrization above; make sure it is not empty
        # and the protocol map only names real workloads.
        names = default_workload_registry().names()
        assert len(names) >= 10
        assert set(PROTOCOL_FOR) <= set(names)


class TestRoundTripEveryEnvironment:
    """Every registered environment, run through the generic workload."""

    @pytest.mark.parametrize("environment", default_environment_registry().names())
    def test_environment_record_round_trips(self, environment):
        task = workload_task("environment", env=environment)
        outcome = execute_task(task)
        record = RunRecord.from_task(task, outcome)

        assert RunRecord.from_dict(record.to_dict()) == record
        assert record.to_outcome() == outcome
        # The resolved environment travels inside the record.
        assert record.environment == outcome.extra["environment"]


class TestContentKey:
    def test_key_is_deterministic_and_readable(self):
        task = workload_task("partitioned-chaos", ts=10.0)
        key = content_key_for_task(task)
        assert key == content_key_for_task(task)
        assert key.startswith("modified-paxos/partitioned-chaos/")
        assert key.endswith("/n5-ts10.0-d1.0-s1")

    def test_key_renders_ts_exactly(self):
        """'%g'-style 6-digit rendering would collide these two tasks."""
        close_a = workload_task("partitioned-chaos", ts=123456.7)
        close_b = workload_task("partitioned-chaos", ts=123456.8)
        assert content_key_for_task(close_a) != content_key_for_task(close_b)

    def test_key_distinguishes_every_identity_component(self):
        base = workload_task("partitioned-chaos", ts=10.0)
        variants = [
            workload_task("partitioned-chaos", ts=10.0, seed=2),
            workload_task("partitioned-chaos", ts=10.0, n=7),
            workload_task("partitioned-chaos", ts=12.0),
            workload_task("lossy-chaos", ts=10.0),
            RunTask(protocol="traditional-paxos", workload="partitioned-chaos",
                    workload_kwargs=dict(base.workload_kwargs)),
            # Same n/ts/delta/seed but different non-key kwargs must still differ
            # (via the env-hash component).
            workload_task("partitioned-chaos", ts=10.0,
                          params=PARAMS.with_epsilon(2.0)),
        ]
        keys = {content_key_for_task(task) for task in variants}
        assert content_key_for_task(base) not in keys
        assert len(keys) == len(variants)

    def test_same_family_shares_env_hash(self):
        key_a = content_key_for_task(workload_task("partitioned-chaos", ts=10.0, n=3))
        key_b = content_key_for_task(workload_task("partitioned-chaos", ts=10.0, n=9, seed=4))
        assert key_a.split("/")[2] == key_b.split("/")[2]

    def test_key_stable_across_processes(self):
        """The content key must not depend on interpreter state (PYTHONHASHSEED)."""
        task = workload_task("partitioned-chaos", ts=10.0)
        script = (
            "from repro.harness.executors import RunTask\n"
            "from repro.params import TimingParams\n"
            "from repro.results.record import content_key_for_task\n"
            "task = RunTask(protocol='modified-paxos', workload='partitioned-chaos',\n"
            "    workload_kwargs={'n': 5, 'seed': 1,\n"
            "        'params': TimingParams(delta=1.0, rho=0.0, epsilon=0.5), 'ts': 10.0},\n"
            "    tags={'suite': 'round-trip', 'seed': 1})\n"
            "print(content_key_for_task(task))\n"
        )
        import os

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONHASHSEED"] = "12345"
        child = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
        )
        assert child.stdout.strip() == content_key_for_task(task)

    def test_fingerprint_embeds_schema_version(self):
        assert task_fingerprint(workload_task("stable"))["schema"] == SCHEMA_VERSION

    def test_run_until_decided_changes_the_key(self):
        """Stop-at-decision vs run-to-horizon runs must never share a cache entry."""
        base = workload_task("partitioned-chaos", ts=10.0)
        horizon = RunTask(protocol=base.protocol, workload=base.workload,
                          workload_kwargs=dict(base.workload_kwargs),
                          tags=dict(base.tags), run_until_decided=False)
        assert content_key_for_task(base) != content_key_for_task(horizon)

    def test_enforcement_flags_do_not_change_the_key(self):
        base = workload_task("partitioned-chaos", ts=10.0)
        lenient = RunTask(protocol=base.protocol, workload=base.workload,
                          workload_kwargs=dict(base.workload_kwargs),
                          tags=dict(base.tags), enforce_safety=False,
                          enforce_invariants=False, record_envelopes=False)
        assert content_key_for_task(base) == content_key_for_task(lenient)

    def test_unserializable_task_argument_rejected(self):
        task = RunTask(
            protocol="modified-paxos", workload="partitioned-chaos",
            workload_kwargs={"n": 3, "seed": 1, "params": PARAMS, "hook": object()},
        )
        with pytest.raises(ResultSchemaError, match="hook"):
            content_key_for_task(task)


class TestExtraValidation:
    """Satellite: non-JSON-safe `extra` values fail loudly, naming their keys."""

    def outcome_with_extra(self, extra) -> RunOutcome:
        return RunOutcome(protocol="modified-paxos", n=3, ts=10.0, delta=1.0,
                          seed=1, extra=extra)

    def test_offending_keys_are_named(self):
        outcome = self.outcome_with_extra(
            {"fine": 1.0, "weird": object(), "also_bad": {1: "int-key"}}
        )
        with pytest.raises(ResultSchemaError) as excinfo:
            RunRecord.from_outcome(outcome, workload="partitioned-chaos", key="k")
        message = str(excinfo.value)
        assert "also_bad" in message and "weird" in message
        assert "fine" not in message

    def test_validate_extra_lists_offenders(self):
        outcome = self.outcome_with_extra({"ok": [1, 2], "bad": 1.0j})
        assert outcome.validate_extra() == ["bad"]

    def test_codec_keys_are_exempt(self):
        outcome = self.outcome_with_extra(
            {"restart_events": [(3.0, 1)], "restart_lags": {1: 2.0},
             "max_lag_after_ts": 1.5}
        )
        record = RunRecord.from_outcome(outcome, workload="restarts", key="k")
        rebuilt = record.to_outcome()
        assert rebuilt.extra["restart_events"] == [(3.0, 1)]
        assert rebuilt.extra["restart_lags"] == {1: 2.0}

    def test_non_finite_floats_rejected(self):
        outcome = self.outcome_with_extra({"lag": float("nan")})
        with pytest.raises(ResultSchemaError, match="lag"):
            RunRecord.from_outcome(outcome, workload="stable", key="k")

    def test_tuple_consensus_values_rejected_not_coerced(self):
        """A tuple value would come back as a list; reject it at record time."""
        from repro.consensus.values import DecisionOutcome

        outcome = RunOutcome(
            protocol="modified-paxos", n=3, ts=10.0, delta=1.0, seed=1,
            decisions=[DecisionOutcome(pid=0, value=(1, 2), time=11.0,
                                       after_stability=1.0)],
            proposals={1: (3, 4)},
        )
        with pytest.raises(ResultSchemaError) as excinfo:
            RunRecord.from_outcome(outcome, workload="stable", key="k")
        message = str(excinfo.value)
        assert "p0" in message and "p1" in message


class TestSchemaVersioning:
    def test_metrics_digest_present(self):
        record = make_run_record(lag=2.5)
        assert record.metrics["max_lag_after_ts"] == 2.5
        assert record.metrics["lag_delta"] == 2.5
        assert record.metrics["all_decided"] is True
        assert record.lag_delta == 2.5

    def test_current_version_stamped(self):
        assert make_run_record().schema_version == SCHEMA_VERSION
        assert make_run_record().to_dict()["schema_version"] == SCHEMA_VERSION

    def test_newer_schema_rejected(self):
        data = make_run_record().to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ResultSchemaError, match="newer"):
            RunRecord.from_dict(data)

    def test_missing_schema_rejected(self):
        data = make_run_record().to_dict()
        del data["schema_version"]
        with pytest.raises(ResultSchemaError, match="schema_version"):
            RunRecord.from_dict(data)

    def test_malformed_record_rejected(self):
        with pytest.raises(ResultSchemaError):
            RunRecord.from_dict({"schema_version": 1, "key": "only-a-key"})
        with pytest.raises(ResultSchemaError):
            RunRecord.from_json("not json at all {")
