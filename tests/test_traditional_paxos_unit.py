"""Transition-level unit tests for traditional Ω-driven Paxos."""

from dataclasses import dataclass, field
from typing import Dict

import pytest

from repro.consensus.paxos.traditional import TraditionalPaxosBuilder, TraditionalPaxosProcess
from repro.core.messages import Decision, Phase1a, Phase1b, Phase2a, Phase2b, Rejected
from repro.errors import ConfigurationError

from tests.helpers import ContextHarness, make_params


@dataclass
class FakeOmega:
    """Scriptable Ω oracle for unit tests."""

    leaders: Dict[int, int] = field(default_factory=dict)
    default_self: bool = True

    def leader(self, pid: int) -> int:
        if pid in self.leaders:
            return self.leaders[pid]
        return pid if self.default_self else -1

    def believes_self_leader(self, pid: int) -> bool:
        return self.leader(pid) == pid


def start_process(pid=0, n=3, value="v0", leader=True, retry_factor=2.0):
    oracle = FakeOmega(leaders={pid: pid if leader else (pid + 1) % n})
    harness = ContextHarness(pid=pid, n=n, params=make_params())
    process = harness.start(
        TraditionalPaxosProcess(oracle=oracle, retry_factor=retry_factor), initial_value=value
    )
    return harness, process, oracle


class TestLeaderBehaviour:
    def test_leader_starts_phase1_at_startup(self):
        harness, process, _ = start_process(leader=True)
        prepares = harness.sent_of_kind("phase1a")
        assert len(prepares) == 3
        assert prepares[0].message.mbal % 3 == 0  # ballots owned by pid 0

    def test_non_leader_stays_quiet(self):
        harness, _, _ = start_process(leader=False)
        assert harness.sent_of_kind("phase1a") == []

    def test_pulse_retries_with_new_ballot_after_interval(self):
        harness, process, _ = start_process(leader=True)
        first_ballot = process.proposer.current_ballot()
        harness.advance_local_time(3.0)  # beyond retry interval of 2 delta
        harness.clear_sent()
        harness.fire_timer(TraditionalPaxosProcess.LEADER_PULSE_TIMER)
        assert process.proposer.current_ballot() > first_ballot
        assert harness.sent_of_kind("phase1a")

    def test_pulse_does_not_interrupt_fresh_attempt(self):
        harness, process, _ = start_process(leader=True)
        first_ballot = process.proposer.current_ballot()
        harness.advance_local_time(0.5)  # attempt is still young
        harness.clear_sent()
        harness.fire_timer(TraditionalPaxosProcess.LEADER_PULSE_TIMER)
        assert process.proposer.current_ballot() == first_ballot
        assert harness.sent_of_kind("phase1a") == []

    def test_retry_factor_validation(self):
        with pytest.raises(ConfigurationError):
            TraditionalPaxosProcess(oracle=FakeOmega(), retry_factor=0.0)


class TestAcceptorSide:
    def test_promise_and_reject(self):
        harness, process, _ = start_process(pid=1, n=3, leader=False)
        harness.deliver(Phase1a(mbal=9), sender=0)  # 9 % 3 == 0
        promises = harness.sent_of_kind("phase1b")
        assert [item.dst for item in promises] == [0]
        harness.clear_sent()
        harness.deliver(Phase1a(mbal=3), sender=0)
        rejects = harness.sent_of_kind("rejected")
        assert [item.dst for item in rejects] == [0]
        assert rejects[0].message.mbal == 9

    def test_accept_broadcasts_phase2b(self):
        harness, process, _ = start_process(pid=1, n=3, leader=False)
        harness.deliver(Phase2a(mbal=6, value="x"), sender=0)
        acks = harness.sent_of_kind("phase2b")
        assert len(acks) == 3
        assert process.acceptor.last_vote == (6, "x")

    def test_low_phase2a_rejected(self):
        harness, process, _ = start_process(pid=1, n=3, leader=False)
        harness.deliver(Phase1a(mbal=9), sender=0)
        harness.clear_sent()
        harness.deliver(Phase2a(mbal=6, value="x"), sender=0)
        assert harness.sent_of_kind("phase2b") == []
        assert harness.sent_of_kind("rejected")

    def test_acceptor_state_persisted_across_restart(self):
        harness, process, oracle = start_process(pid=1, n=3, leader=False)
        harness.deliver(Phase2a(mbal=6, value="x"), sender=0)
        restarted = harness.restart(
            TraditionalPaxosProcess(oracle=FakeOmega(default_self=False)), initial_value="v0"
        )
        assert restarted.acceptor.last_vote == (6, "x")
        assert restarted.acceptor.mbal == 6


class TestProposerSide:
    def test_promise_quorum_sends_phase2a(self):
        harness, process, _ = start_process(pid=0, n=3, leader=True, value="mine")
        ballot = process.proposer.current_ballot()
        harness.clear_sent()
        harness.deliver(Phase1b(mbal=ballot, voted_bal=-1, voted_val=None), sender=1)
        harness.deliver(Phase1b(mbal=ballot, voted_bal=-1, voted_val=None), sender=2)
        proposals = harness.sent_of_kind("phase2a")
        assert len(proposals) == 3
        assert proposals[0].message.value == "mine"

    def test_previous_vote_overrides_own_proposal(self):
        harness, process, _ = start_process(pid=0, n=3, leader=True, value="mine")
        ballot = process.proposer.current_ballot()
        harness.deliver(Phase1b(mbal=ballot, voted_bal=2, voted_val="locked"), sender=1)
        harness.deliver(Phase1b(mbal=ballot, voted_bal=-1, voted_val=None), sender=2)
        proposals = harness.sent_of_kind("phase2a")
        assert proposals[-1].message.value == "locked"

    def test_rejection_triggers_immediate_higher_ballot(self):
        harness, process, _ = start_process(pid=0, n=3, leader=True)
        old_ballot = process.proposer.current_ballot()
        harness.clear_sent()
        harness.deliver(Rejected(mbal=old_ballot + 50), sender=2)
        new_ballot = process.proposer.current_ballot()
        assert new_ballot > old_ballot + 50
        assert harness.sent_of_kind("phase1a")

    def test_stale_rejection_ignored(self):
        harness, process, _ = start_process(pid=0, n=3, leader=True)
        ballot = process.proposer.current_ballot()
        harness.clear_sent()
        harness.deliver(Rejected(mbal=ballot - 1), sender=2)
        assert process.proposer.current_ballot() == ballot
        assert harness.sent_of_kind("phase1a") == []

    def test_phase2b_quorum_decides(self):
        harness, process, _ = start_process(pid=0, n=3, leader=True)
        harness.deliver(Phase2b(mbal=3, value="agreed"), sender=1)
        harness.deliver(Phase2b(mbal=3, value="agreed"), sender=2)
        assert process.decided_value == "agreed"
        assert harness.sent_of_kind("decision")

    def test_decided_process_answers_with_decision(self):
        harness, process, _ = start_process(pid=0, n=3, leader=True)
        harness.deliver(Decision(value="agreed"), sender=1)
        harness.clear_sent()
        harness.deliver(Phase1a(mbal=99), sender=2)
        assert [item.dst for item in harness.sent_of_kind("decision")] == [2]


class TestBuilder:
    def test_create_requires_attach(self):
        builder = TraditionalPaxosBuilder()
        with pytest.raises(ConfigurationError):
            builder.create(0)
