"""Resume semantics for store-backed experiments, campaigns, and sweeps (PR 4).

The acceptance scenario: a campaign run with ``--store``, killed after k of
m runs, and re-invoked with ``--resume`` executes exactly m−k runs and
yields byte-identical tables to an uninterrupted run.
"""

import pytest

from repro.errors import ExperimentError
from repro.harness.campaign import run_campaign, write_report
from repro.harness.executors import SerialExecutor, snapshot_outcome
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.harness.experiments import default_experiment_params
from repro.harness.sweep import StoredRunResult, sweep
from repro.harness.tables import ExperimentTable
from repro.results import JsonlStore, MemoryStore, open_store
from repro.results.record import content_key_for_task

PARAMS = default_experiment_params()


class CountingExecutor(SerialExecutor):
    """Serial executor that counts how many tasks it actually ran."""

    def __init__(self):
        super().__init__()
        self.executed = 0

    def imap(self, tasks):
        for task in tasks:
            self.executed += 1
            yield snapshot_outcome(self.map_result(task))


class DyingExecutor(SerialExecutor):
    """Simulates a campaign killed midway: dies after ``fail_after`` runs."""

    def __init__(self, fail_after):
        super().__init__()
        self.fail_after = fail_after
        self.executed = 0

    def imap(self, tasks):
        for task in tasks:
            if self.executed >= self.fail_after:
                raise KeyboardInterrupt("simulated mid-campaign kill")
            self.executed += 1
            yield snapshot_outcome(self.map_result(task))


def chaos_spec() -> ExperimentSpec:
    return ExperimentSpec(
        workload="partitioned-chaos",
        protocols=("modified-paxos",),
        seeds=(1, 2),
        base={"params": PARAMS, "ts": 10.0},
        grid={"n": (3, 5)},
    )


def table_of(results) -> str:
    from repro.harness.experiment import lag_delta

    return ExperimentTable.from_result_set(
        results, experiment="EX", title="resume test", group=("n",),
        columns={"runs": len, "max_lag_delta": lambda s: s.max(lag_delta)},
    ).render()


class TestRunExperimentResume:
    def test_fresh_run_streams_all_records(self, tmp_path):
        store = JsonlStore(tmp_path / "runs.jsonl")
        results = run_experiment(chaos_spec(), store=store)
        assert len(results) == 4
        assert len(store) == 4
        keys = {content_key_for_task(task) for task in chaos_spec().tasks()}
        assert set(store.keys()) == keys

    def test_full_resume_executes_nothing(self, tmp_path):
        store = JsonlStore(tmp_path / "runs.jsonl")
        fresh = run_experiment(chaos_spec(), store=store)
        counting = CountingExecutor()
        resumed = run_experiment(chaos_spec(), store=store, resume=True,
                                 executor=counting)
        assert counting.executed == 0
        assert table_of(resumed) == table_of(fresh)

    def test_partial_resume_executes_exactly_missing(self, tmp_path):
        spec = chaos_spec()
        m = len(spec.tasks())
        k = 2
        store = JsonlStore(tmp_path / "runs.jsonl")
        with pytest.raises(KeyboardInterrupt):
            run_experiment(spec, store=store, executor=DyingExecutor(fail_after=k))
        # Streaming writes: everything finished before the kill is durable.
        assert len(JsonlStore(tmp_path / "runs.jsonl")) == k

        counting = CountingExecutor()
        resumed = run_experiment(spec, store=store, resume=True, executor=counting)
        assert counting.executed == m - k
        assert len(resumed) == m
        assert table_of(resumed) == table_of(run_experiment(spec))

    def test_resume_without_store_rejected(self):
        with pytest.raises(ExperimentError, match="store"):
            run_experiment(chaos_spec(), resume=True)

    def test_without_store_behaviour_unchanged(self):
        assert table_of(run_experiment(chaos_spec())) == table_of(run_experiment(chaos_spec()))

    def test_executor_without_map_or_imap_fails_clearly(self):
        from repro.harness.executors import Executor

        class Hollow(Executor):
            pass

        with pytest.raises(NotImplementedError, match="override"):
            Hollow().map([])


class TestCampaignResume:
    def test_interrupted_campaign_yields_byte_identical_tables(self, tmp_path):
        """The PR acceptance scenario, end to end at smoke scale."""
        baseline = run_campaign(scale="smoke", experiments=["E7"])
        baseline_report = write_report(baseline, str(tmp_path / "baseline"))

        store_path = str(tmp_path / "campaign.jsonl")
        with pytest.raises(KeyboardInterrupt):
            run_campaign(scale="smoke", experiments=["E7"], store=store_path,
                         executor=DyingExecutor(fail_after=2))
        partial = len(JsonlStore(store_path))
        assert 0 < partial < 4  # E7 smoke = 4 protocols x 1 seed

        counting = CountingExecutor()
        resumed = run_campaign(scale="smoke", experiments=["E7"], store=store_path,
                               resume=True, executor=counting)
        assert counting.executed == 4 - partial
        resumed_report = write_report(resumed, str(tmp_path / "resumed"))

        assert (tmp_path / "resumed" / "E7.txt").read_bytes() == \
            (tmp_path / "baseline" / "E7.txt").read_bytes()
        # The Markdown reports differ only in the timing lines.
        strip = lambda path: [line for line in path.read_text().splitlines()  # noqa: E731
                              if not line.startswith("_Regenerated")]
        assert strip(tmp_path / "resumed" / "experiments_report.md") == \
            strip(tmp_path / "baseline" / "experiments_report.md")
        assert baseline_report != resumed_report  # separate files, same tables

    def test_campaign_records_collect_in_memory_store_by_default(self):
        result = run_campaign(scale="smoke", experiments=["E7"])
        assert isinstance(result.store, MemoryStore)
        assert len(result.store) == 4

    def test_to_store_copies_records(self, tmp_path):
        result = run_campaign(scale="smoke", experiments=["E7"])
        target = str(tmp_path / "copied.sqlite")
        assert result.to_store(target) == 4
        with open_store(target) as reopened:
            assert sorted(reopened.keys()) == sorted(result.store.keys())

    def test_write_report_accepts_store(self, tmp_path):
        result = run_campaign(scale="smoke", experiments=["E7"])
        report = write_report(result, str(tmp_path / "out"),
                              store=str(tmp_path / "report.jsonl"))
        assert (tmp_path / "out" / "E7.txt").exists()
        assert report.endswith("experiments_report.md")
        assert len(JsonlStore(tmp_path / "report.jsonl")) == 4


class TestSweepResume:
    def test_sweep_store_and_resume(self, tmp_path):
        store = JsonlStore(tmp_path / "sweep.jsonl")
        fresh = sweep("n", (3, 5), workload="stable", protocol="modified-paxos",
                      workload_kwargs={"params": PARAMS}, seeds=(1,), store=store)
        assert len(store) == 2

        resumed = sweep("n", (3, 5), workload="stable", protocol="modified-paxos",
                        workload_kwargs={"params": PARAMS}, seeds=(1,),
                        store=store, resume=True)
        cached = [run for point in resumed.points for run in point.results]
        assert all(isinstance(run, StoredRunResult) for run in cached)
        metric = lambda run: run.max_lag_after_ts()  # noqa: E731 - outcome-level metric
        for fresh_point, resumed_point in zip(fresh.points, resumed.points):
            assert resumed_point.metric_values(metric) == fresh_point.metric_values(metric)

    def test_stored_run_result_refuses_simulator_access(self, tmp_path):
        store = JsonlStore(tmp_path / "sweep.jsonl")
        sweep("n", (3,), workload="stable", protocol="modified-paxos",
              workload_kwargs={"params": PARAMS}, seeds=(1,), store=store)
        resumed = sweep("n", (3,), workload="stable", protocol="modified-paxos",
                        workload_kwargs={"params": PARAMS}, seeds=(1,),
                        store=store, resume=True)
        cached = resumed.points[0].results[0]
        assert cached.decided_all
        with pytest.raises(ExperimentError, match="simulator"):
            _ = cached.simulator

    def test_sweep_store_requires_declarative_identity(self, tmp_path):
        store = JsonlStore(tmp_path / "sweep.jsonl")
        with pytest.raises(ExperimentError, match="workload"):
            sweep("n", (3,), scenario_factory=lambda value, seed: None, store=store)

    def test_sweep_resume_requires_store(self):
        with pytest.raises(ExperimentError, match="store"):
            sweep("n", (3,), workload="stable", protocol="modified-paxos",
                  seeds=(1,), resume=True)
