"""Backend-conformance suite for `repro.results.store` (PR 4).

Every test in :class:`TestConformance` runs against all three backends
through one fixture, which *is* the acceptance requirement: MemoryStore,
JsonlStore, and SqliteStore pass one shared suite.  Backend-specific
durability details (atomic index, stale-index rescue, reopen) follow.
"""

import json
import os

import pytest

from helpers import make_run_record
from repro.errors import ResultStoreError
from repro.harness.tables import ExperimentTable
from repro.results import (
    JsonlStore,
    MemoryStore,
    SqliteStore,
    diff_aggregates,
    export_csv,
    export_json,
    lag_aggregates,
    open_store,
    result_set_of,
)

BACKENDS = ("memory", "jsonl", "sqlite")


@pytest.fixture(params=BACKENDS)
def store_factory(request, tmp_path):
    """Opens (and reopens) one named store of the parametrized backend."""

    def make(name="conformance"):
        if request.param == "memory":
            return MemoryStore()
        if request.param == "jsonl":
            return JsonlStore(tmp_path / f"{name}.jsonl")
        return SqliteStore(tmp_path / f"{name}.sqlite")

    make.backend = request.param
    return make


def seed_records(store, count=4):
    records = [
        make_run_record(protocol="modified-paxos", workload="partitioned-chaos",
                        n=3, seed=1, lag=2.0, key="k/mp/chaos/1"),
        make_run_record(protocol="modified-paxos", workload="stable",
                        n=3, seed=1, lag=1.0, key="k/mp/stable/1"),
        make_run_record(protocol="traditional-paxos", workload="partitioned-chaos",
                        n=3, seed=1, lag=6.0, key="k/tp/chaos/1"),
        make_run_record(protocol="modified-paxos", workload="partitioned-chaos",
                        n=5, seed=2, lag=3.0, key="k/mp/chaos/2"),
    ][:count]
    for record in records:
        store.put(record)
    return records


class TestConformance:
    """The shared contract: identical behaviour across every backend."""

    def test_empty_store(self, store_factory):
        store = store_factory()
        assert len(store) == 0
        assert store.keys() == []
        assert list(store.records()) == []
        assert store.get("missing") is None
        assert "missing" not in store

    def test_put_get_roundtrip(self, store_factory):
        store = store_factory()
        records = seed_records(store)
        for record in records:
            assert store.get(record.key) == record
            assert record.key in store
        assert len(store) == len(records)

    def test_keys_keep_insertion_order(self, store_factory):
        store = store_factory()
        records = seed_records(store)
        assert store.keys() == [record.key for record in records]
        assert [r.key for r in store.records()] == [record.key for record in records]

    def test_overwrite_is_last_write_wins(self, store_factory):
        store = store_factory()
        seed_records(store)
        replacement = make_run_record(protocol="modified-paxos",
                                      workload="partitioned-chaos",
                                      n=3, seed=1, lag=9.0, key="k/mp/chaos/1")
        store.put(replacement)
        assert len(store) == 4
        assert store.get("k/mp/chaos/1") == replacement
        # Overwriting must not disturb iteration order.
        assert store.keys()[0] == "k/mp/chaos/1"

    def test_query_records_by_protocol_and_workload(self, store_factory):
        store = store_factory()
        seed_records(store)
        assert len(store.query_records(protocol="modified-paxos")) == 3
        assert len(store.query_records(workload="partitioned-chaos")) == 3
        both = store.query_records(protocol="modified-paxos",
                                   workload="partitioned-chaos")
        assert [record.key for record in both] == ["k/mp/chaos/1", "k/mp/chaos/2"]

    def test_query_by_tags_and_predicate(self, store_factory):
        store = store_factory()
        seed_records(store)
        assert len(store.query_records(seed=2)) == 1
        heavy = store.query_records(where=lambda r: (r.lag_delta or 0.0) > 2.5)
        assert sorted(record.key for record in heavy) == ["k/mp/chaos/2", "k/tp/chaos/1"]

    def test_query_returns_live_result_set(self, store_factory):
        """Stored data flows straight into the existing table/stats layers."""
        store = store_factory()
        seed_records(store)
        results = store.query(protocol="modified-paxos", workload="partitioned-chaos")
        assert len(results) == 2
        assert results.tag_values("seed") == [1, 2]
        table = ExperimentTable.from_result_set(
            results,
            experiment="EX", title="stored", group=("n",),
            columns={"runs": len},
        )
        assert [row["n"] for row in table.rows] == [3, 5]

    def test_copy_into_other_backend(self, store_factory, tmp_path):
        store = store_factory()
        records = seed_records(store)
        target = SqliteStore(tmp_path / "copy-target.sqlite")
        assert store.copy_into(target) == len(records)
        assert target.keys() == store.keys()
        target.close()

    def test_context_manager_flushes(self, store_factory):
        with store_factory("ctx") as store:
            seed_records(store, count=2)
        reopened = store_factory("ctx")
        if store_factory.backend != "memory":  # memory dies with the object
            assert len(reopened) == 2


class TestJsonlDurability:
    def test_reopen_without_flush_rescans_log(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = JsonlStore(path)
        records = seed_records(store)  # no flush(): index never written
        assert not os.path.exists(store.index_path)
        reopened = JsonlStore(path)
        assert reopened.keys() == [record.key for record in records]

    def test_flush_writes_matching_index(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = JsonlStore(path)
        seed_records(store)
        store.flush()
        index = json.loads((tmp_path / "runs.jsonl.index.json").read_text())
        assert index["size"] == os.path.getsize(path)
        assert set(index["offsets"]) == set(store.keys())

    def test_stale_index_triggers_rescan(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = JsonlStore(path)
        seed_records(store, count=2)
        store.flush()
        # Appends after the flush make the index stale; reopen must rescan.
        store.put(make_run_record(key="late/arrival", seed=9))
        reopened = JsonlStore(path)
        assert "late/arrival" in reopened

    def test_corrupt_index_triggers_rescan(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = JsonlStore(path)
        records = seed_records(store)
        store.flush()
        (tmp_path / "runs.jsonl.index.json").write_text("{ not json")
        reopened = JsonlStore(path)
        assert len(reopened) == len(records)

    def test_torn_final_line_is_truncated_on_reopen(self, tmp_path):
        """A put() killed mid-write must not make the store unreadable."""
        path = tmp_path / "runs.jsonl"
        store = JsonlStore(path)
        records = seed_records(store, count=2)
        store.flush()
        # Simulate a kill mid-put: a partial record with no trailing newline
        # (the index is now stale too, so reopen goes through a rescan).
        with open(path, "ab") as handle:
            handle.write(b'{"schema_version": 1, "key": "torn/one", "proto')
        reopened = JsonlStore(path)
        assert reopened.keys() == [record.key for record in records]
        assert "torn/one" not in reopened
        # The torn tail is gone, so new appends start on a clean line.
        late = make_run_record(key="after/the/crash")
        reopened.put(late)
        assert JsonlStore(path).get("after/the/crash") == late

    def test_corrupt_complete_line_still_raises(self, tmp_path):
        """Only a torn *final* line is forgiven; mid-file corruption is loud."""
        from repro.errors import ResultSchemaError

        path = tmp_path / "runs.jsonl"
        JsonlStore(path).put(make_run_record(key="good/one"))
        raw = path.read_bytes()
        path.write_bytes(b'{"not": "a record"}\n' + raw)
        with pytest.raises(ResultSchemaError):
            JsonlStore(path)

    def test_interleaved_writers_are_not_masked_by_the_index(self, tmp_path):
        """Sharded campaigns append to one log; no flush may hide a shard."""
        path = tmp_path / "shared.jsonl"
        writer_a = JsonlStore(path)
        writer_b = JsonlStore(path)
        writer_a.put(make_run_record(key="shard-a/1"))
        writer_b.put(make_run_record(key="shard-b/1"))
        writer_a.put(make_run_record(key="shard-a/2"))
        # A flushes last knowing nothing of B's record; its index must not
        # claim to cover the whole file while omitting shard-b/1.
        writer_b.flush()
        writer_a.flush()
        reopened = JsonlStore(path)
        assert sorted(reopened.keys()) == ["shard-a/1", "shard-a/2", "shard-b/1"]
        # The rescan also taught writer A about B's record.
        assert "shard-b/1" in writer_a

    def test_appends_are_durable_before_flush(self, tmp_path):
        """A killed process loses at most the index, never a written record."""
        path = tmp_path / "runs.jsonl"
        store = JsonlStore(path)
        record = make_run_record(key="durable/now")
        store.put(record)
        lines = [line for line in path.read_text().splitlines() if line.strip()]
        assert len(lines) == 1
        assert json.loads(lines[0])["key"] == "durable/now"


class TestSqlite:
    def test_reopen_preserves_records_and_order(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        store = SqliteStore(path)
        records = seed_records(store)
        store.close()
        reopened = SqliteStore(path)
        assert reopened.keys() == [record.key for record in records]
        assert reopened.get(records[0].key) == records[0]
        reopened.close()

    def test_sql_prefilter_matches_generic_query(self, tmp_path):
        store = SqliteStore(tmp_path / "runs.sqlite")
        seed_records(store)
        via_sql = store.query_records(protocol="modified-paxos")
        via_scan = [r for r in store.records() if r.protocol == "modified-paxos"]
        assert via_sql == via_scan
        store.close()


class TestOpenStore:
    def test_suffix_dispatch(self, tmp_path):
        assert isinstance(open_store("memory"), MemoryStore)
        assert isinstance(open_store(":memory:"), MemoryStore)
        assert isinstance(open_store(tmp_path / "a.jsonl"), JsonlStore)
        for suffix in (".sqlite", ".sqlite3", ".db"):
            store = open_store(tmp_path / f"a{suffix}")
            assert isinstance(store, SqliteStore)
            store.close()

    def test_prefix_overrides_suffix(self, tmp_path):
        store = open_store(f"jsonl:{tmp_path / 'no-suffix.log'}")
        assert isinstance(store, JsonlStore)
        sqlite_store = open_store(f"sqlite:{tmp_path / 'no-suffix.data'}")
        assert isinstance(sqlite_store, SqliteStore)
        sqlite_store.close()

    def test_store_instance_passes_through(self):
        store = MemoryStore()
        assert open_store(store) is store

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(ResultStoreError, match="backend"):
            open_store(tmp_path / "runs.txt")


class TestQueryHelpers:
    def test_lag_aggregates_group_by_protocol_workload(self):
        store = MemoryStore()
        seed_records(store)
        aggregates = lag_aggregates(store.records())
        chaos = aggregates[("modified-paxos", "partitioned-chaos")]
        assert chaos.runs == 2
        assert chaos.mean_lag_delta == pytest.approx(2.5)
        assert chaos.max_lag_delta == pytest.approx(3.0)

    def test_diff_aggregates_reports_both_sides(self):
        a, b = MemoryStore(), MemoryStore()
        seed_records(a)
        b.put(make_run_record(protocol="modified-paxos", workload="partitioned-chaos",
                              n=3, seed=1, lag=4.0, key="k/mp/chaos/1"))
        rows = diff_aggregates(a.records(), b.records())
        chaos = next(r for r in rows
                     if (r["protocol"], r["workload"]) == ("modified-paxos",
                                                           "partitioned-chaos"))
        assert chaos["runs_a"] == 2 and chaos["runs_b"] == 1
        assert chaos["max_lag_diff"] == pytest.approx(4.0 - 3.0)
        # Groups present on only one side still appear, with None diffs.
        stable = next(r for r in rows if r["workload"] == "stable")
        assert stable["runs_b"] == 0 and stable["max_lag_diff"] is None

    def test_export_csv_and_json(self):
        store = MemoryStore()
        records = seed_records(store)
        csv_text = export_csv(store.records())
        lines = csv_text.strip().splitlines()
        assert len(lines) == len(records) + 1
        assert lines[0].startswith("key,protocol,workload")
        parsed = json.loads(export_json(store.records()))
        assert [entry["key"] for entry in parsed] == [r.key for r in records]

    def test_result_set_of_preserves_tags(self):
        rows = result_set_of([make_run_record(case="x", seed=7, key="k/one")])
        assert rows.rows[0].tag("case") == "x"
        assert rows.rows[0].outcome.seed == 7
