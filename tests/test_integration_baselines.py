"""Integration: the baselines' O(Nδ) behaviour and the contrast with Modified Paxos (E2/E3)."""

from repro.core.timing import decision_bound
from repro.harness.runner import run_scenario
from repro.workloads.coordinator_faults import coordinator_crash_scenario
from repro.workloads.obsolete import obsolete_ballot_scenario
from repro.workloads.chaos import partitioned_chaos_scenario

from tests.helpers import make_params

PARAMS = make_params(rho=0.01)


class TestObsoleteBallots:
    def test_traditional_paxos_lag_grows_with_obsolete_count(self):
        lags = {}
        for k in (0, 2, 4):
            scenario = obsolete_ballot_scenario(9, params=PARAMS, seed=1, num_obsolete=k)
            result = run_scenario(scenario, "traditional-paxos")
            assert result.decided_all
            assert result.safety.valid
            lags[k] = result.max_lag_after_ts()
        assert lags[2] > lags[0]
        assert lags[4] > lags[2]
        # Each obsolete ballot costs at least roughly one extra round trip.
        assert lags[4] - lags[0] >= 2.0 * PARAMS.delta

    def test_traditional_paxos_exceeds_modified_bound_for_larger_systems(self):
        scenario = obsolete_ballot_scenario(17, params=PARAMS, seed=1)
        result = run_scenario(scenario, "traditional-paxos")
        assert result.decided_all
        assert result.max_lag_after_ts() > decision_bound(PARAMS)

    def test_every_release_is_recorded_in_the_trace(self):
        scenario = obsolete_ballot_scenario(9, params=PARAMS, seed=2, num_obsolete=3)
        result = run_scenario(scenario, "traditional-paxos")
        assert result.simulator.trace.count("obsolete_release") == 3

    def test_modified_paxos_same_size_same_chaos_stays_within_bound(self):
        """The contrast that motivates the paper, at the same system size."""
        baseline = run_scenario(
            obsolete_ballot_scenario(13, params=PARAMS, seed=1), "traditional-paxos"
        )
        modified = run_scenario(
            partitioned_chaos_scenario(13, params=PARAMS, ts=8.0, seed=1), "modified-paxos"
        )
        assert modified.max_lag_after_ts() <= decision_bound(PARAMS)
        assert baseline.max_lag_after_ts() > modified.max_lag_after_ts()


class TestCrashedCoordinators:
    def test_rotating_coordinator_lag_grows_with_faulty_coordinators(self):
        lags = {}
        for f in (0, 2, 4):
            scenario = coordinator_crash_scenario(11, params=PARAMS, seed=1, num_faulty=f)
            result = run_scenario(scenario, "rotating-coordinator")
            assert result.decided_all
            assert result.safety.valid
            lags[f] = result.max_lag_after_ts()
        assert lags[2] > lags[0]
        assert lags[4] > lags[2]
        # Each crashed coordinator costs roughly one round timeout (4 delta).
        assert lags[4] - lags[0] >= 4.0 * PARAMS.delta

    def test_rotating_coordinator_exceeds_modified_bound_at_max_faults(self):
        scenario = coordinator_crash_scenario(13, params=PARAMS, seed=1)
        result = run_scenario(scenario, "rotating-coordinator")
        assert result.decided_all
        assert result.max_lag_after_ts() > decision_bound(PARAMS)

    def test_modified_paxos_unaffected_by_crashed_low_id_processes(self):
        """Modified Paxos has no coordinator role, so the same fault pattern is harmless."""
        scenario = coordinator_crash_scenario(11, params=PARAMS, seed=1, num_faulty=4)
        result = run_scenario(scenario, "modified-paxos")
        assert result.decided_all
        assert result.max_lag_after_ts() <= decision_bound(PARAMS)

    def test_round_entry_invariant_holds(self):
        scenario = coordinator_crash_scenario(9, params=PARAMS, seed=3, num_faulty=3)
        result = run_scenario(scenario, "rotating-coordinator")
        assert result.invariants["round-entry-rule"].ok

    def test_decided_value_proposed_by_a_survivor_or_anyone(self):
        scenario = coordinator_crash_scenario(9, params=PARAMS, seed=3, num_faulty=3)
        result = run_scenario(scenario, "rotating-coordinator")
        decided = {record.value for record in result.simulator.decisions.values()}
        assert len(decided) == 1
        assert decided.pop() in result.simulator.proposals.values()
