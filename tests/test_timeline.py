"""Tests for per-process timelines (`repro.analysis.timeline`)."""

from repro.analysis.timeline import Milestone, extract_timelines, render_timelines
from repro.analysis.trace import TraceRecorder
from repro.harness.runner import run_scenario
from repro.workloads.chaos import partitioned_chaos_scenario
from repro.workloads.stable import stable_scenario

from tests.helpers import make_params


def crafted_trace():
    trace = TraceRecorder()
    trace.record(0.0, "node", "start", pid=0, incarnation=1)
    trace.record(0.0, "node", "start", pid=1, incarnation=1)
    trace.record(0.0, "protocol", "session_enter", pid=0, session=0, via="start")
    trace.record(2.0, "node", "crash", pid=1)
    trace.record(4.0, "node", "restart", pid=1, incarnation=2)
    trace.record(5.0, "protocol", "start_phase1", pid=0, ballot=3, session=1)
    trace.record(5.5, "protocol", "phase2a", pid=0, ballot=3, value="v")
    trace.record(6.0, "sim", "decide", pid=0, value="v")
    trace.record(1.0, "net", "send", pid=0, kind="phase1a")  # not a milestone
    return trace


class TestExtraction:
    def test_milestones_grouped_per_process(self):
        timelines = extract_timelines(crafted_trace(), n=2)
        assert [m.label for m in timelines[1].milestones] == ["start", "crash", "restart"]
        labels = [m.label for m in timelines[0].milestones]
        assert "entered session 0 (start)" in labels
        assert "started phase 1 for ballot 3" in labels
        assert "decided 'v'" in labels

    def test_non_milestone_events_ignored(self):
        timelines = extract_timelines(crafted_trace(), n=2)
        assert all("send" not in m.label for m in timelines[0].milestones)

    def test_decision_time(self):
        timelines = extract_timelines(crafted_trace(), n=2)
        assert timelines[0].decision_time == 6.0
        assert timelines[1].decision_time is None

    def test_between_filter(self):
        timelines = extract_timelines(crafted_trace(), n=2)
        assert len(timelines[0].between(5.0, 6.0)) == 3

    def test_unknown_pids_ignored(self):
        trace = TraceRecorder()
        trace.record(1.0, "node", "crash", pid=7)
        assert extract_timelines(trace, n=2)[0].milestones == []

    def test_milestone_describe(self):
        assert "decided" in Milestone(time=1.0, label="decided 'v'").describe()


class TestRendering:
    def test_render_contains_every_process_and_ts_markers(self):
        text = render_timelines(crafted_trace(), n=2, ts=4.0)
        assert "p0:" in text and "p1:" in text
        assert "stabilization time TS = 4" in text
        assert "[TS+2.00]" in text  # the decision at t=6 with ts=4

    def test_only_after_filter(self):
        text = render_timelines(crafted_trace(), n=2, only_after=5.0)
        assert "crash" not in text
        assert "decided" in text

    def test_empty_processes_marked(self):
        trace = TraceRecorder()
        text = render_timelines(trace, n=1)
        assert "(no milestones)" in text


class TestOnRealRuns:
    def test_modified_paxos_run_produces_sensible_timeline(self):
        params = make_params(rho=0.01)
        scenario = partitioned_chaos_scenario(5, params=params, ts=6.0, seed=3)
        result = run_scenario(scenario, "modified-paxos")
        text = render_timelines(result.simulator.trace, 5, ts=6.0)
        assert "entered session" in text
        assert "decided" in text

    def test_rotating_coordinator_timeline_mentions_rounds(self):
        params = make_params(rho=0.01)
        result = run_scenario(stable_scenario(3, params=params, seed=1), "rotating-coordinator")
        text = render_timelines(result.simulator.trace, 3)
        assert "entered round 0" in text
