"""Tests for the campaign runner (`repro.harness.campaign`) at smoke scale."""

import os

import pytest

from repro.harness.campaign import campaign_plan, main, run_campaign, write_report


class TestPlan:
    def test_smoke_and_full_cover_all_nine_experiments(self):
        assert sorted(campaign_plan("smoke")) == [f"E{i}" for i in range(1, 10)]
        assert sorted(campaign_plan("full")) == [f"E{i}" for i in range(1, 10)]

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            campaign_plan("enormous")


class TestRun:
    def test_selected_experiments_only(self):
        messages = []
        result = run_campaign(scale="smoke", experiments=["E7"], progress=messages.append)
        assert [table.experiment for table in result.tables] == ["E7"]
        assert "E7" in result.durations
        assert messages and "E7" in messages[0]
        assert result.table("E7").rows

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(scale="smoke", experiments=["E42"])

    def test_table_lookup_missing(self):
        result = run_campaign(scale="smoke", experiments=["E7"])
        with pytest.raises(KeyError):
            result.table("E1")


class TestReport:
    def test_write_report_produces_files(self, tmp_path):
        result = run_campaign(scale="smoke", experiments=["E7", "E3"])
        report = write_report(result, str(tmp_path))
        assert os.path.exists(report)
        assert (tmp_path / "E7.txt").exists()
        assert (tmp_path / "E3.txt").exists()
        content = (tmp_path / "experiments_report.md").read_text()
        assert "E7" in content and "E3" in content
        assert "```" in content

    def test_cli_main_smoke(self, tmp_path):
        exit_code = main(["--scale", "smoke", "--experiment", "E7", "--out", str(tmp_path)])
        assert exit_code == 0
        assert (tmp_path / "experiments_report.md").exists()
