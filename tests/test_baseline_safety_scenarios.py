"""Deterministic adversarial interleavings for the non-Paxos protocols.

Same style as ``test_paxos_safety_scenarios.py``: hand-scheduled deliveries
through :class:`tests.helpers.ScriptedCluster`, reproducing the situations
the safety arguments of the rotating-coordinator algorithm and of the
B-Consensus reconstruction actually hinge on.
"""


from repro.consensus.bconsensus.messages import ABSTAIN, Vote
from repro.consensus.bconsensus.modified import ModifiedBConsensusProcess
from repro.consensus.roundbased.messages import Ack
from repro.consensus.roundbased.rotating import RotatingCoordinatorProcess

from tests.helpers import ScriptedCluster


def rotating_cluster(n=3, values=None):
    return ScriptedCluster(lambda pid: RotatingCoordinatorProcess(), n=n, values=values)


def bconsensus_cluster(n=3, values=None):
    return ScriptedCluster(lambda pid: ModifiedBConsensusProcess(), n=n, values=values)


class TestRotatingCoordinatorLocking:
    def test_value_locked_by_acks_survives_coordinator_change(self):
        """A majority that acked round 0 forces every later round to the same value."""
        cluster = rotating_cluster(values=["A", "B", "C"])
        # Round 0: coordinator p0 collects StartRound from everyone and proposes "A"
        # (its own estimate, since nothing was ever adopted).
        cluster.deliver_kind("start_round", dst=0)
        proposals = cluster.pending_of_kind("propose")
        assert proposals and all(entry[2].value == "A" for entry in proposals)
        # The proposal reaches p1 and p2 which adopt and ack, but all acks are
        # lost before any process collects a majority of them.
        cluster.deliver_kind("propose", dst=1)
        cluster.deliver_kind("propose", dst=2)
        cluster.drop_kind("propose")
        cluster.drop_kind("ack")
        assert cluster.processes[1].adopted_in == 0
        assert cluster.processes[2].estimate == "A"
        # Round 1 (coordinator p1) starts via timeouts; its StartRound messages
        # carry adopted_in=0 for p1/p2, so the new coordinator must re-propose "A".
        for pid in range(3):
            cluster.deliver_kind("start_round", dst=pid)
        for pid in range(3):
            cluster.fire_timer(pid, RotatingCoordinatorProcess.ROUND_TIMER)
        cluster.deliver_all()
        assert cluster.decided_values() <= {"A"}
        assert len(cluster.decided_values()) == 1

    def test_unadopted_estimate_can_be_superseded(self):
        """Without any adoption, a later round may legitimately pick another value."""
        cluster = rotating_cluster(values=["A", "B", "C"])
        # Round 0's proposal never reaches anyone.
        cluster.deliver_kind("start_round", dst=0)
        cluster.drop_kind("propose")
        # Everyone times out into round 1 (they all saw each other's StartRound 0).
        for pid in range(3):
            cluster.deliver_kind("start_round", dst=pid)
        for pid in range(3):
            cluster.fire_timer(pid, RotatingCoordinatorProcess.ROUND_TIMER)
        cluster.deliver_all()
        decided = cluster.decided_values()
        assert len(decided) == 1
        assert decided <= {"A", "B", "C"}

    def test_stale_ack_from_old_round_cannot_fabricate_decision(self):
        cluster = rotating_cluster(values=["A", "B", "C"])
        # Craft the dangerous interleaving directly: p2 receives one ack for a
        # round that never reached a majority and one for a different value in
        # a later round; neither set reaches a quorum of distinct senders.
        cluster.processes[2].on_message(Ack(round=0, value="A"), 0)
        cluster.processes[2].on_message(Ack(round=1, value="B"), 1)
        assert not cluster.processes[2].has_decided

    def test_acks_for_same_round_different_senders_decide_once(self):
        cluster = rotating_cluster(values=["A", "B", "C"])
        cluster.processes[2].on_message(Ack(round=0, value="A"), 0)
        cluster.processes[2].on_message(Ack(round=0, value="A"), 1)
        assert cluster.processes[2].decided_value == "A"
        # Duplicate or conflicting late acks change nothing.
        cluster.processes[2].on_message(Ack(round=0, value="A"), 0)
        assert cluster.processes[2].decided_value == "A"


class TestBConsensusVoteIntersection:
    def test_two_conflicting_concrete_votes_cannot_coexist(self):
        """Every pair of stage-1 majorities intersects, so concrete votes agree.

        Drive two processes' stage-1 samples from overlapping majorities and
        check that their (non-abstain) votes are necessarily equal.
        """
        cluster = bconsensus_cluster(values=["A", "A", "B"])
        # Every process w-broadcasts First(0, estimate); release the oracle
        # messages to p0 and p1 only, giving each a full sample.
        for dst in (0, 1):
            for entry in list(cluster.pending_of_kind("wab", dst=dst)):
                cluster.deliver(entry)
            harness = cluster.harnesses[dst]
            harness.advance_local_time(10.0)
            for name in [t for t in list(harness.timers) if t.startswith("wab-release-")]:
                cluster.fire_timer(dst, name)
        votes = {
            entry[0]: entry[2].vote
            for entry in cluster.pending_of_kind("bvote")
        }
        concrete = [vote for vote in votes.values() if vote != ABSTAIN]
        assert len(set(concrete)) <= 1

    def test_decision_forces_later_round_estimates(self):
        """If someone decides v in round r, everyone finishing round r adopts v."""
        cluster = bconsensus_cluster(values=["A", "B", "C"])
        # p0 receives a unanimous majority of concrete votes for "A" and decides.
        cluster.processes[0].on_message(Vote(round=0, vote="A"), 1)
        cluster.processes[0].on_message(Vote(round=0, vote="A"), 2)
        assert cluster.processes[0].decided_value == "A"
        # p1's sample intersects p0's: it must contain at least one "A" vote,
        # so when it finishes the round its estimate becomes "A".
        cluster.processes[1].on_message(Vote(round=0, vote="A"), 2)
        cluster.processes[1].on_message(Vote(round=0, vote=ABSTAIN), 1)
        assert cluster.processes[1].estimate == "A"
        assert cluster.processes[1].round == 1

    def test_full_delivery_reaches_single_decision(self):
        cluster = bconsensus_cluster(values=["A", "B", "C"])
        # Release all oracle messages and votes repeatedly, firing hold-back
        # timers in between, until the system settles.
        for _ in range(6):
            cluster.deliver_all()
            for pid in range(3):
                harness = cluster.harnesses[pid]
                harness.advance_local_time(5.0)
                for name in [t for t in list(harness.timers) if t.startswith("wab-release-")]:
                    cluster.fire_timer(pid, name)
            cluster.deliver_all()
            if len(cluster.decisions()) == 3:
                break
        assert len(cluster.decided_values()) <= 1

    def test_mixed_abstain_votes_do_not_decide(self):
        cluster = bconsensus_cluster(values=["A", "B", "C"])
        cluster.processes[0].on_message(Vote(round=0, vote=ABSTAIN), 1)
        cluster.processes[0].on_message(Vote(round=0, vote="B"), 2)
        assert not cluster.processes[0].has_decided
        assert cluster.processes[0].estimate == "B"
