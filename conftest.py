"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. running ``pytest`` straight from a fresh checkout in an offline
environment).  When the package *is* installed this is a harmless no-op
because the installed location takes whatever precedence pip gave it.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
