"""E6 — The ε keep-alive: message complexity vs. recovery latency (claim C6).

Shape expectation: as ε grows, the per-process post-``TS`` message rate
falls (fewer keep-alives) while the analytic bound — and generally the
measured decision lag — grows once ``2δ + ε`` exceeds ``σ``.
"""

from repro.harness.experiments import (
    default_experiment_params,
    experiment_e6_epsilon_tradeoff,
)


def test_e6_epsilon_tradeoff(experiment_runner):
    base = default_experiment_params()
    table = experiment_runner(
        experiment_e6_epsilon_tradeoff,
        n=9,
        epsilons=(0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0),
        seeds=(1, 2),
        base_params=base,
    )
    rates = table.column("post_ts_msgs_per_proc_per_delta")
    bounds = table.column("bound_delta")
    lags = table.column("max_lag_delta")
    assert all(value is not None for value in rates + bounds + lags)
    # Message rate falls by a large factor from the chattiest to the quietest setting.
    assert rates[0] > 3.0 * rates[-1]
    # The analytic bound is monotone non-decreasing in epsilon.
    assert all(b >= a - 1e-9 for a, b in zip(bounds, bounds[1:]))
    # Every measured lag still respects its own bound.
    assert all(lag <= bound for lag, bound in zip(lags, bounds))
