"""E3 — Rotating coordinator with crashed coordinators: O(fδ) (claim C3).

Shape expectation: ``max_lag_delta`` grows roughly linearly in the number of
crashed coordinators ``f`` (about one 4δ round timeout each) and exceeds the
Modified Paxos bound once ``f`` is large.
"""

from repro.harness.experiments import (
    default_experiment_params,
    experiment_e3_rotating_coordinator,
)


def test_e3_rotating_coordinator_faulty_sweep(experiment_runner):
    params = default_experiment_params()
    table = experiment_runner(
        experiment_e3_rotating_coordinator,
        n=21,
        faulty_counts=(0, 2, 4, 6, 8, 10),
        seeds=(1, 2),
        params=params,
    )
    lags = table.column("max_lag_delta")
    fs = table.column("faulty_f")
    assert all(lag is not None for lag in lags)
    assert lags[-1] > lags[0]
    slope = (lags[-1] - lags[0]) / (fs[-1] - fs[0])
    assert slope >= 2.0, f"expected roughly one round timeout per crashed coordinator, got {slope:.2f}"
    assert lags[-1] > table.column("modified_bound_delta")[-1]
