"""Shared configuration for the benchmark suite.

Each benchmark regenerates one experiment (see DESIGN.md §4) exactly once —
these are macro-benchmarks of whole simulated executions, so
``benchmark.pedantic(..., rounds=1, iterations=1)`` is used instead of
letting pytest-benchmark calibrate thousands of iterations.  The regenerated
table is printed so that running ``pytest benchmarks/ --benchmark-only -s``
(or reading ``bench_output.txt``) shows the paper-shaped results alongside
the timings.

Set ``REPRO_BENCH_JOBS=N`` to fan each experiment's runs out over ``N``
worker processes (experiments that accept an ``executor`` get a shared
parallel one; the regenerated tables are identical to serial runs because
every simulation is seeded and deterministic — only the wall-clock column
changes).
"""

from __future__ import annotations

import inspect
import os
import sys

import pytest

# Allow running the benchmarks from a fresh checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.harness.executors import make_executor  # noqa: E402

_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
_EXECUTOR = make_executor(_JOBS)

_TABLES_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)), "benchmark_tables.txt")
_tables_initialized = False


def _persist_table(rendered: str) -> None:
    """Append the rendered experiment table to ``benchmark_tables.txt``.

    pytest captures stdout, so the regenerated tables would otherwise be
    invisible in ``bench_output.txt``; persisting them to a sibling file
    keeps the paper-shaped results inspectable after a benchmark run.
    """
    global _tables_initialized
    mode = "a" if _tables_initialized else "w"
    with open(_TABLES_PATH, mode, encoding="utf-8") as handle:
        handle.write(rendered)
        handle.write("\n\n")
    _tables_initialized = True


def run_experiment_once(benchmark, experiment_fn, **kwargs):
    """Run ``experiment_fn(**kwargs)`` once under the benchmark timer.

    When ``REPRO_BENCH_JOBS`` asks for parallelism, the shared executor is
    handed to every experiment that accepts one.
    """
    if _JOBS > 1 and "executor" in inspect.signature(experiment_fn).parameters:
        kwargs.setdefault("executor", _EXECUTOR)
    table = benchmark.pedantic(lambda: experiment_fn(**kwargs), rounds=1, iterations=1)
    rendered = table.render()
    print()
    print(rendered)
    _persist_table(rendered)
    return table


@pytest.fixture
def experiment_runner(benchmark):
    """Fixture wrapping :func:`run_experiment_once` with the benchmark object."""

    def runner(experiment_fn, **kwargs):
        return run_experiment_once(benchmark, experiment_fn, **kwargs)

    return runner
