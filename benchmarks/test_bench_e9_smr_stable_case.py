"""E9 — Multi-decree extension: stable-case command latency (claim C6, §4).

The paper's "Reducing Message Complexity" discussion says that with phase 1
executed in advance for all instances, all nonfaulty processes decide within
3 message delays when the system is stable, and that the modified algorithm
can be configured to behave the same way.  The multi-decree SMR layer
(:mod:`repro.smr`) implements exactly that configuration; this benchmark
measures per-command latency in the stable case (commands at the established
leader vs. at a follower) and after a hostile pre-stabilization period.

Shape expectation: leader-submitted commands are learned everywhere within
~3 maximum message delays, follower-submitted ones within ~4 (one forwarding
hop more); commands riding through pre-`TS` chaos are all learned within the
eventual-synchrony bound after `TS`.
"""

from repro.core.timing import decision_bound
from repro.harness.experiments import (
    default_experiment_params,
    experiment_e9_smr_stable_case,
)


def test_e9_smr_stable_case(experiment_runner):
    params = default_experiment_params()
    table = experiment_runner(
        experiment_e9_smr_stable_case,
        n=9,
        stable_commands=30,
        chaos_commands=10,
        params=params,
    )
    leader_row, follower_row, chaos_row = table.rows
    assert leader_row["worst_global_latency_delta"] <= 3.0
    assert follower_row["worst_global_latency_delta"] <= 4.0
    assert chaos_row["worst_global_latency_delta"] <= 2.0 * decision_bound(params) / params.delta
