"""E8 — The cross-protocol comparison table.

Shape expectation: under the identical chaos workload the modified
algorithms stay flat as N grows; under their specific worst-case adversaries
the two baselines grow with N and overtake the modified algorithms.
"""

from collections import defaultdict

from repro.core.timing import decision_bound
from repro.harness.comparison import experiment_e8_protocol_comparison
from repro.harness.experiments import default_experiment_params


def test_e8_protocol_comparison(experiment_runner):
    params = default_experiment_params()
    table = experiment_runner(
        experiment_e8_protocol_comparison,
        ns=(5, 9, 15),
        seeds=(1,),
        params=params,
    )
    bound = decision_bound(params) / params.delta

    by_protocol = defaultdict(dict)
    for row in table.rows:
        by_protocol[row["protocol"]][row["n"]] = row

    # Modified algorithms: decided everywhere, flat, within (2x of) the bound.
    for protocol, factor in (("modified-paxos", 1.0), ("modified-b-consensus", 2.0)):
        rows = by_protocol[protocol]
        lags = [rows[n]["chaos_lag_delta"] for n in (5, 9, 15)]
        assert all(lag is not None and lag <= factor * bound for lag in lags)

    # Baselines under their adversarial workloads: grow with N.
    trad = [by_protocol["traditional-paxos"][n]["adversarial_lag_delta"] for n in (5, 9, 15)]
    rot = [by_protocol["rotating-coordinator"][n]["adversarial_lag_delta"] for n in (5, 9, 15)]
    assert trad[2] > trad[0]
    assert rot[2] > rot[0]
    # And at the largest size the baselines are slower than Modified Paxos under chaos.
    modified_largest = by_protocol["modified-paxos"][15]["chaos_lag_delta"]
    assert trad[2] > modified_largest
    assert rot[2] > modified_largest
