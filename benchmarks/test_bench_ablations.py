"""Ablation benchmarks for design choices called out in DESIGN.md.

* Original vs. modified B-Consensus: the Section 5 modification (round
  jumping + current-round-only retransmission) should not be slower and
  should send no more messages than retransmit-everything.
* Session-timer length: the 4δ minimum required by the paper versus longer
  timers — longer session timers inflate the decision lag roughly linearly,
  which is why the paper pins the timer to Θ(δ).
"""

from repro.harness.runner import run_scenario
from repro.harness.experiments import default_experiment_params
from repro.params import TimingParams
from repro.workloads.chaos import partitioned_chaos_scenario


def _run_many(protocol, scenarios, **kwargs):
    results = [run_scenario(scenario, protocol, **kwargs) for scenario in scenarios]
    lags = [result.max_lag_after_ts() for result in results]
    messages = [result.metrics.messages_sent for result in results]
    return lags, messages


def test_ablation_bconsensus_modification(benchmark):
    """Modified vs. original B-Consensus on the same chaos workloads."""
    params = default_experiment_params()
    scenarios = [
        partitioned_chaos_scenario(7, params=params, ts=8.0, seed=seed) for seed in (1, 2, 3)
    ]

    def run_pair():
        modified = _run_many("modified-b-consensus", scenarios)
        original = _run_many("b-consensus", scenarios)
        return modified, original

    (modified_lags, modified_msgs), (original_lags, original_msgs) = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    print()
    print("ablation: B-Consensus modification (3 seeds, n=7, partitioned chaos)")
    print(f"  modified : lag(delta)={[round(v, 2) for v in modified_lags]} msgs={modified_msgs}")
    print(f"  original : lag(delta)={[round(v, 2) for v in original_lags]} msgs={original_msgs}")
    assert all(lag is not None for lag in modified_lags + original_lags)
    # The modification must not lose liveness or cost more messages overall.
    assert sum(modified_msgs) <= sum(original_msgs) * 1.1


def test_ablation_session_timer_length(benchmark):
    """Longer session timers slow recovery roughly proportionally."""
    def run_sweep():
        lags = {}
        for factor in (4.0, 8.0, 16.0):
            params = TimingParams(delta=1.0, rho=0.01, epsilon=0.5, session_timeout_factor=factor)
            scenario = partitioned_chaos_scenario(7, params=params, ts=8.0, seed=2)
            result = run_scenario(scenario, "modified-paxos")
            lags[factor] = result.max_lag_after_ts()
        return lags

    lags = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print("ablation: session timer factor -> decision lag after TS (delta units)")
    for factor, lag in lags.items():
        print(f"  {factor:>5.1f} * delta : {lag:.2f}")
    assert all(lag is not None for lag in lags.values())
    assert lags[16.0] > lags[4.0], "longer session timers must slow post-TS recovery"


def test_ablation_worst_case_post_ts_delays(benchmark):
    """Every post-TS delivery takes the full δ: lags rise but stay under the bound."""
    from repro.core.timing import decision_bound

    params = default_experiment_params()

    def run_pair():
        lags = {}
        for label, worst in (("random delays", False), ("worst-case delays", True)):
            per_seed = []
            for seed in (1, 2, 3):
                scenario = partitioned_chaos_scenario(
                    9, params=params, ts=8.0, seed=seed, worst_case_post_delays=worst
                )
                result = run_scenario(scenario, "modified-paxos")
                per_seed.append(result.max_lag_after_ts())
            lags[label] = max(per_seed)
        return lags

    lags = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    bound = decision_bound(params)
    print()
    print("ablation: post-TS delivery delays -> worst decision lag (delta units)")
    for label, lag in lags.items():
        print(f"  {label:18s}: {lag:.2f}  (bound {bound:.2f})")
    assert lags["worst-case delays"] >= lags["random delays"]
    assert lags["worst-case delays"] <= bound


def test_ablation_omniscient_vs_heartbeat_omega(benchmark):
    """Replacing the granted Ω oracle with heartbeat election costs only O(δ)."""
    params = default_experiment_params()

    def run_pair():
        lags = {}
        for protocol in ("traditional-paxos", "traditional-paxos-heartbeat"):
            per_seed = []
            for seed in (1, 2, 3):
                scenario = partitioned_chaos_scenario(7, params=params, ts=8.0, seed=seed)
                result = run_scenario(scenario, protocol)
                per_seed.append(result.max_lag_after_ts())
            lags[protocol] = max(per_seed)
        return lags

    lags = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print()
    print("ablation: leader election implementation -> worst decision lag (delta units)")
    for protocol, lag in lags.items():
        print(f"  {protocol:28s}: {lag:.2f}")
    assert all(lag is not None for lag in lags.values())
    assert lags["traditional-paxos-heartbeat"] <= lags["traditional-paxos"] + 6.0


def test_ablation_keepalive_disabled_equivalent(benchmark):
    """A very large ε (keep-alive effectively off) still decides, but slower.

    This isolates why the ε re-broadcast exists: with ε far above δ the
    post-stabilization recovery leans entirely on session timeouts.
    """
    def run_pair():
        base = default_experiment_params()
        fast = partitioned_chaos_scenario(7, params=base, ts=8.0, seed=3)
        slow_params = base.with_epsilon(8.0 * base.delta)
        slow = partitioned_chaos_scenario(7, params=slow_params, ts=8.0, seed=3)
        fast_lag = run_scenario(fast, "modified-paxos").max_lag_after_ts()
        slow_lag = run_scenario(slow, "modified-paxos").max_lag_after_ts()
        return fast_lag, slow_lag

    fast_lag, slow_lag = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print()
    print(f"ablation: epsilon=0.5*delta lag={fast_lag:.2f} vs epsilon=8*delta lag={slow_lag:.2f}")
    assert fast_lag is not None and slow_lag is not None
    assert slow_lag >= fast_lag
