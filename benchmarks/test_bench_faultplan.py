"""Micro-benchmark: FaultPlan fluent construction must stay O(n log n).

Before the bisect refactor every ``crash``/``restart`` call re-sorted the
whole event list, making an n-event plan cost O(n² log n) comparisons
overall (hundreds of millions for the plan sizes the churn environments
generate).  ``bisect.insort`` brings construction down to O(log n)
comparisons plus a memmove per insert — O(n log n) overall — which this
module asserts two ways: a growth-ratio check (doubling n must not blow up
the per-event cost) and an absolute wall-clock ceiling that the quadratic
implementation misses by orders of magnitude.
"""

import time

from repro.faults.plan import FaultPlan


def _build_plan(num_events: int) -> FaultPlan:
    plan = FaultPlan()
    # Alternate crash/restart per pid in ascending time order — the pattern
    # every schedule generator produces.  bisect lands each insert at the
    # tail (O(log n) compares, O(1) moves); the old re-sort-per-call code
    # paid a full O(n)-compare timsort pass for every one of these calls.
    pids = 64
    for index in range(num_events // 2):
        pid = index % pids
        base = float(index)
        plan.crash(pid, base)
        plan.restart(pid, base + 0.5)
    return plan


def _construction_seconds(num_events: int) -> float:
    start = time.perf_counter()
    plan = _build_plan(num_events)
    elapsed = time.perf_counter() - start
    assert len(plan) == (num_events // 2) * 2
    return elapsed


def test_bench_fault_plan_construction(benchmark):
    benchmark.pedantic(lambda: _build_plan(20_000), rounds=3, iterations=1)


def test_fault_plan_construction_is_not_quadratic():
    """Micro-assertion: doubling the plan size stays near-linear.

    O(n log n) predicts a time ratio of ~2.2 for a doubling; the pre-bisect
    O(n² log n) implementation gives ~4 per doubling in comparisons alone
    (and far worse in constants).  The 3.5x ceiling leaves headroom for
    timer noise while still failing a quadratic regression, and is averaged
    over three attempts so one scheduler hiccup cannot flake the build.
    """
    small, large = 40_000, 80_000
    ratios = []
    for _ in range(3):
        t_small = _construction_seconds(small)
        t_large = _construction_seconds(large)
        ratios.append(t_large / max(t_small, 1e-9))
    ratios.sort()
    median_ratio = ratios[len(ratios) // 2]
    assert median_ratio < 3.5, (
        f"doubling the plan took {median_ratio:.2f}x longer (median of {ratios}); "
        "FaultPlan construction has regressed toward quadratic"
    )


def test_fault_plan_construction_absolute_ceiling():
    """40k fluent inserts must finish in well under a second.

    The pre-bisect implementation needs ~40 s for this workload (one full
    timsort per insert); the bisect path needs ~50 ms.  A 2 s ceiling is
    ~40x headroom for slow CI machines while still catching an O(n²)
    regression by an order of magnitude.
    """
    elapsed = _construction_seconds(40_000)
    assert elapsed < 2.0, f"40k-event plan took {elapsed:.2f}s; construction is no longer O(n log n)"
