"""E4 — Modified B-Consensus decision lag after stabilization vs. N (claim C5).

Shape expectation: flat in N and O(δ) ("about the same as the modified Paxos
algorithm" per Section 5 — within a small constant factor of its bound).
"""

from repro.core.timing import decision_bound
from repro.harness.experiments import (
    default_experiment_params,
    experiment_e4_modified_bconsensus,
)


def test_e4_modified_bconsensus_scaling(experiment_runner):
    params = default_experiment_params()
    table = experiment_runner(
        experiment_e4_modified_bconsensus,
        ns=(3, 5, 7, 9, 13, 17, 21),
        seeds=(1, 2),
        params=params,
    )
    lags = [lag for lag in table.column("max_lag_delta") if lag is not None]
    assert len(lags) == 7
    assert sum(table.column("undecided")) == 0
    bound = decision_bound(params) / params.delta
    assert all(lag <= 2.0 * bound for lag in lags)
    assert max(lags) - min(lags) <= 12.0, "decision lag should not grow with N"
