"""E2 — Traditional Paxos under obsolete high ballots: O(Nδ) (claim C2).

Shape expectation: ``max_lag_delta`` grows roughly linearly with the number
of obsolete ballots ``k = ⌈N/2⌉ − 1`` (about 2δ per obsolete ballot), and for
larger N it exceeds the flat Modified Paxos bound.
"""

from repro.harness.experiments import (
    default_experiment_params,
    experiment_e2_traditional_obsolete,
)


def test_e2_traditional_paxos_obsolete_ballots(experiment_runner):
    params = default_experiment_params()
    table = experiment_runner(
        experiment_e2_traditional_obsolete,
        ns=(5, 9, 13, 17, 21, 25, 31),
        seeds=(1, 2),
        params=params,
    )
    lags = table.column("max_lag_delta")
    ks = table.column("obsolete_k")
    assert all(lag is not None for lag in lags)
    # Monotone growth with k (allowing small noise between adjacent points).
    assert lags[-1] > lags[0] + 2.0
    # Roughly linear: at least ~1.5 delta per additional obsolete ballot overall.
    slope = (lags[-1] - lags[0]) / (ks[-1] - ks[0])
    assert slope >= 1.0, f"expected O(k*delta) growth, got slope {slope:.2f}"
    # The largest configuration must exceed the Modified Paxos bound — the
    # contrast the paper is about.
    assert lags[-1] > table.column("modified_bound_delta")[-1]
