"""Micro-benchmarks of the simulation kernel itself.

These are conventional pytest-benchmark micro-benchmarks (many iterations):
they track the cost of the event queue and of a full simulated broadcast
workload, which bounds how large the experiment sweeps can be pushed.
"""

from repro.net.network import Network
from repro.net.synchrony import EventualSynchrony
from repro.sim.events import EventQueue
from repro.sim.process import Process
from repro.sim.rng import SeededRng
from repro.sim.simulator import SimulationConfig, Simulator
from repro.params import TimingParams


def test_bench_event_queue_push_pop(benchmark):
    def push_pop():
        queue = EventQueue()
        for i in range(2000):
            queue.push(float(i % 97), lambda: None)
        while queue:
            queue.pop()

    benchmark(push_pop)


def test_bench_event_queue_fast_path(benchmark):
    """Handle-free scheduling drained through pop_before (the run-loop path)."""

    def push_pop():
        queue = EventQueue()
        action = lambda: None
        for i in range(2000):
            queue.push(float(i % 97), action, cancellable=False)
        while queue.pop_before(float("inf")) is not None:
            pass

    benchmark(push_pop)


class _Gossip(Process):
    """Every process re-broadcasts on a short timer for a fixed horizon."""

    def on_start(self):
        self.ctx.set_timer("tick", 0.5)

    def on_message(self, message, sender):
        pass

    def on_timer(self, name):
        from repro.core.messages import Phase1a

        self.ctx.broadcast(Phase1a(mbal=self.ctx.pid))
        self.ctx.set_timer("tick", 0.5)


def test_bench_simulator_throughput(benchmark):
    def run_simulation():
        params = TimingParams(delta=1.0, rho=0.0, epsilon=0.5)
        config = SimulationConfig(n=9, params=params, ts=0.0, seed=1, max_time=30.0,
                                  trace_enabled=False)
        # record_envelopes=False matches how the `repro bench` network kernel
        # and campaign runs execute: monitor counters only, no unbounded log.
        network = Network(model=EventualSynchrony(ts=0.0, delta=1.0), rng=SeededRng(1),
                          record_envelopes=False)
        sim = Simulator(config, lambda pid: _Gossip(), network)
        sim.run(until=30.0)
        return sim.events_processed

    events = benchmark.pedantic(run_simulation, rounds=3, iterations=1)
    assert events > 1000


def test_bench_modified_paxos_stable_run(benchmark):
    """End-to-end cost of one stable-case Modified Paxos run (n=9)."""
    from repro.harness.runner import run_scenario
    from repro.workloads.stable import stable_scenario
    from repro.harness.experiments import default_experiment_params

    params = default_experiment_params()

    def run_once():
        result = run_scenario(stable_scenario(9, params=params, seed=5), "modified-paxos")
        assert result.decided_all
        return result.metrics.messages_sent

    benchmark.pedantic(run_once, rounds=3, iterations=1)
