"""E5 — Recovery lag of processes restarting after stabilization (claim C4).

Shape expectation: every recovery lag is O(δ) — far below the composite
bound — regardless of how long after ``TS`` the restart happens.
"""

from repro.core.timing import restart_decision_bound
from repro.harness.experiments import (
    default_experiment_params,
    experiment_e5_restart_recovery,
)


def test_e5_restart_recovery(experiment_runner):
    params = default_experiment_params()
    table = experiment_runner(
        experiment_e5_restart_recovery,
        n=9,
        offsets=(5.0, 20.0, 40.0, 80.0),
        seeds=(1, 2),
        params=params,
    )
    recoveries = table.column("max_recovery_delta")
    assert all(value is not None for value in recoveries)
    bound = restart_decision_bound(params) / params.delta
    assert all(value <= bound for value in recoveries)
    # Recovery does not degrade for later restarts (decision re-broadcasts
    # keep it constant).
    assert max(recoveries) - min(recoveries) <= bound
