"""E7 — The stable, failure-free fast path (claim C6).

Shape expectation: every protocol decides within a handful of message delays
(a few δ), an order of magnitude under the eventual-synchrony bound and with
no dependence on pre-stabilization machinery.
"""

from repro.core.timing import decision_bound
from repro.harness.experiments import default_experiment_params, experiment_e7_stable_case


def test_e7_stable_case(experiment_runner):
    params = default_experiment_params()
    table = experiment_runner(
        experiment_e7_stable_case,
        n=9,
        seeds=(1, 2, 3),
        params=params,
    )
    lags = table.column("max_decision_delta")
    protocols = table.column("protocol")
    assert all(lag is not None for lag in lags)
    bound = decision_bound(params) / params.delta
    for protocol, lag in zip(protocols, lags):
        assert lag < bound, f"{protocol} should be far below the eventual-synchrony bound"
        assert lag <= 10.0, f"{protocol} stable-case decision should take only a few delta"
    # The Paxos-family cold start is ~4 message delays.
    paxos_lag = dict(zip(protocols, lags))["modified-paxos"]
    assert paxos_lag <= 6.0
