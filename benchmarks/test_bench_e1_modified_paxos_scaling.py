"""E1 — Modified Paxos decision lag after stabilization vs. N (claim C1).

Shape expectation: the ``max_lag_delta`` column stays flat as N grows and
every entry is below the analytic bound ``ε + 3τ + 5δ`` (≈ 17–18 δ).
"""

from repro.core.timing import decision_bound
from repro.harness.experiments import (
    default_experiment_params,
    experiment_e1_modified_paxos_scaling,
)


def test_e1_modified_paxos_scaling(experiment_runner):
    params = default_experiment_params()
    table = experiment_runner(
        experiment_e1_modified_paxos_scaling,
        ns=(3, 5, 7, 9, 13, 17, 21, 25, 31),
        seeds=(1, 2, 3),
        params=params,
    )
    bound = decision_bound(params) / params.delta
    lags = [lag for lag in table.column("max_lag_delta") if lag is not None]
    assert len(lags) == 9, "every system size must reach a decision"
    assert all(lag <= bound for lag in lags), "measured lag must respect the paper bound"
    assert sum(table.column("undecided")) == 0
    # Flat in N: the largest system is not meaningfully slower than the smallest.
    assert max(lags) - min(lags) <= 10.0, "decision lag should not grow with N"
