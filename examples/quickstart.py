#!/usr/bin/env python3
"""Quickstart: run Modified Paxos through a hostile pre-stabilization period.

This is the smallest end-to-end use of the library:

1. resolve a workload by name through the scenario registry
   (``partitioned-chaos``): before the unknown stabilization time ``TS``
   the network keeps the processes split into minority groups, loses most
   messages, and crashes/restarts a minority; after ``TS`` every message
   arrives within ``δ``;
2. run the paper's session-based Modified Paxos on it;
3. check safety and print how long after ``TS`` each process decided,
   compared with the paper's analytic bound ``ε + 3τ + 5δ`` (≈ 17–18 δ).

Run with::

    python examples/quickstart.py
"""

from repro import TimingParams, decision_bound, default_workload_registry, run_scenario


def main() -> None:
    params = TimingParams(delta=1.0, rho=0.01, epsilon=0.5)
    ts = 10.0  # the processes do not know this; the harness does
    workloads = default_workload_registry()
    scenario = workloads.create("partitioned-chaos", n=7, params=params, ts=ts, seed=42)

    print(scenario.describe())
    print()

    result = run_scenario(scenario, "modified-paxos")

    print(f"safety: {'OK' if result.safety.valid else result.safety.violations}")
    print(f"decided value: {result.safety.decided_value!r}")
    print(f"messages sent: {result.metrics.messages_sent} "
          f"(of which {result.metrics.sends_post_ts} after TS)")
    print()
    print("per-process decision times (relative to TS):")
    for pid in sorted(result.simulator.decisions):
        record = result.simulator.decisions[pid]
        lag = record.time - ts
        print(f"  p{pid}: decided {record.value!r} at TS{lag:+.2f} delta")

    bound = decision_bound(params)
    worst = result.max_lag_after_ts()
    print()
    print(f"worst decision lag after TS : {worst:.2f} delta")
    print(f"paper bound (eps + 3tau + 5delta): {bound:.2f} delta")
    assert worst is not None and worst <= bound, "measured lag should respect the bound"


if __name__ == "__main__":
    main()
