#!/usr/bin/env python3
"""Scenario: datacenter failover with stragglers rejoining after recovery.

A cluster agrees on a configuration epoch ("which datacenter is active")
after a rolling outage.  Some nodes were down when the network stabilized
and only come back minutes later — the paper's "process restarts after TS"
case.  The claim reproduced here (Section 4, *Process Restarts*) is that a
node rejoining at time ``T' > TS`` catches up within ``O(δ)`` of ``T'``,
because decided nodes keep re-broadcasting the decision and the session
machinery folds the straggler back in within one session.

The example also shows what the straggler actually recovers from stable
storage (its ballot and the decision, once learnt).

Run with::

    python examples/datacenter_failover.py
"""

from repro import TimingParams, default_workload_registry, run_scenario
from repro.analysis.metrics import restart_recovery_lags
from repro.core.timing import restart_decision_bound

NODES = 7
PARAMS = TimingParams(delta=1.0, rho=0.01, epsilon=0.5)
REJOIN_OFFSETS = [5.0, 25.0, 60.0]  # how long after stabilization each straggler returns


def main() -> None:
    scenario = default_workload_registry().create(
        "restarts", n=NODES, params=PARAMS, ts=10.0, seed=3, restart_offsets=REJOIN_OFFSETS
    )
    scenario.initial_values = [f"prefer-dc-{pid % 2}" for pid in range(NODES)]
    print(scenario.describe())
    print()

    result = run_scenario(scenario, "modified-paxos")
    print(f"cluster agreed on: {result.safety.decided_value!r}")
    print(f"everyone decided : {result.decided_all}")
    print()

    lags = restart_recovery_lags(result.simulator)
    bound = restart_decision_bound(PARAMS)
    print("straggler recovery (time from rejoin to decision):")
    restart_events = sorted(result.simulator.trace.filter(event="restart"), key=lambda e: e.time)
    for offset, event in zip(REJOIN_OFFSETS, restart_events):
        pid = event.pid
        lag = lags.get(pid)
        node = result.simulator.nodes[pid]
        print(
            f"  node {pid} rejoined at TS+{offset:>5.1f} delta -> decided {lag:5.2f} delta later "
            f"(bound ~{bound:.1f} delta, incarnation {node.incarnation}, "
            f"{node.storage.write_count} stable-storage writes)"
        )

    assert all(lag <= bound for lag in lags.values())
    print("\nevery straggler recovered within the restart bound, independent of when it rejoined")


if __name__ == "__main__":
    main()
