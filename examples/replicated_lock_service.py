#!/usr/bin/env python3
"""Scenario: choosing the primary of a replicated lock service after an outage.

The motivating story behind "how fast after stability can we agree?" is a
replicated service that has just come out of a network incident: the
replicas must agree on a new primary (a single value — the classic use of
one consensus instance) and every second of disagreement is downtime.

This example compares, on the same outage profile, how quickly the paper's
Modified Paxos and the two classic baselines converge once the network heals
(the stabilization time ``TS``), and shows the baselines' failure modes:

* traditional Ω-driven Paxos is tripped up by obsolete high ballots left
  over from the outage (Section 2 of the paper);
* the rotating-coordinator algorithm burns a full timeout for every crashed
  coordinator (Section 3);
* Modified Paxos converges within its fixed ``O(δ)`` bound.

Run with::

    python examples/replicated_lock_service.py
"""

from repro import TimingParams, decision_bound, default_workload_registry, run_scenario

REPLICAS = 9
PARAMS = TimingParams(delta=1.0, rho=0.01, epsilon=0.5)
CANDIDATE_PRIMARIES = [f"replica-{i}" for i in range(REPLICAS)]
WORKLOADS = default_workload_registry()


def report(label: str, result) -> None:
    lag = result.max_lag_after_ts()
    decided = result.safety.decided_value
    print(f"{label:60s} new primary = {decided!s:12s} "
          f"agreed {lag:6.2f} delta after the network healed")


def main() -> None:
    print(f"electing a primary among {REPLICAS} lock-service replicas")
    print(f"paper bound for Modified Paxos: {decision_bound(PARAMS):.1f} delta\n")

    # 1. Generic messy outage: partitions, message loss, a couple of crashes.
    outage = WORKLOADS.create("partitioned-chaos", n=REPLICAS, params=PARAMS, ts=12.0, seed=7)
    outage.initial_values = CANDIDATE_PRIMARIES
    report("modified Paxos after a partition outage", run_scenario(outage, "modified-paxos"))

    # 2. The same story for traditional Paxos, with the outage having left
    #    obsolete high-ballot prepare messages in flight.
    stale_ballots = WORKLOADS.create("obsolete-ballots", n=REPLICAS, params=PARAMS, seed=7)
    stale_ballots.initial_values = CANDIDATE_PRIMARIES
    report(
        "traditional Paxos with stale ballots from crashed replicas",
        run_scenario(stale_ballots, "traditional-paxos"),
    )

    # 3. Rotating coordinator when the outage killed the replicas that
    #    coordinate the first rounds.
    dead_coordinators = WORKLOADS.create(
        "coordinator-crash", n=REPLICAS, params=PARAMS, seed=7, num_faulty=REPLICAS // 2
    )
    dead_coordinators.initial_values = CANDIDATE_PRIMARIES
    report(
        "rotating coordinator with the first coordinators crashed",
        run_scenario(dead_coordinators, "rotating-coordinator"),
    )

    print(
        "\nModified Paxos needs no leader oracle and no coordinator rotation, so the "
        "post-outage agreement time does not grow with the number of replicas."
    )


if __name__ == "__main__":
    main()
