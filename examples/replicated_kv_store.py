#!/usr/bin/env python3
"""Scenario: a replicated key/value store on multi-decree Modified Paxos.

This example uses the SMR extension (`repro.smr`): one ballot — and one
phase 1 — covers the whole command log, so during stable periods a write
submitted at the serving leader is learned by every replica after a single
phase-2 round (the paper's "3 message delays in the stable case"), while the
session machinery still guarantees `O(δ)` recovery if the period before
stabilization was hostile.

The run below drives a small key/value workload:

* a first batch of writes is submitted while the network is still partitioned
  (before `TS`) — they are replicated shortly after stabilization;
* a second batch is submitted to the leader during the stable period — they
  commit in a couple of message delays;
* at the end, every replica applies its log prefix to a fresh
  ``KeyValueStore`` and the digests are compared.

Run with::

    python examples/replicated_kv_store.py
"""

from repro import TimingParams, default_workload_registry
from repro.smr import KeyValueStore, run_smr
from repro.smr.workload import CommandSchedule

REPLICAS = 5
PARAMS = TimingParams(delta=1.0, rho=0.01, epsilon=0.5)
TS = 10.0


def build_schedule(survivor: int) -> CommandSchedule:
    schedule = CommandSchedule()
    # Batch 1: submitted during the partition (before TS).
    for index in range(4):
        schedule.add(
            survivor, 2.0 + index, f"early-{index}", ("set", f"user-{index}", f"signup-{index}")
        )
    # Batch 2: submitted well after stabilization, at the same replica.
    for index in range(6):
        schedule.add(
            survivor,
            TS + 20.0 + index,
            f"late-{index}",
            ("set", f"session-{index}", f"token-{index}"),
        )
    return schedule


def main() -> None:
    scenario = default_workload_registry().create(
        "partitioned-chaos", n=REPLICAS, params=PARAMS, ts=TS, seed=21
    )
    survivor = scenario.deciders()[0]
    schedule = build_schedule(survivor)

    print(f"replicated KV store on {REPLICAS} replicas; {schedule.describe()}")
    print(f"client co-located with replica {survivor}; network heals at TS={TS:g}\n")

    result = run_smr(scenario, schedule, machine_factory=KeyValueStore)

    print("command                when learned everywhere (relative to TS / to submission)")
    for command_id, record in sorted(result.commands.items()):
        learned = max(record.learned_times.values())
        print(
            f"  {command_id:10s}  submitted t={record.submit_time:6.2f}  "
            f"learned everywhere at TS{learned - TS:+7.2f}   "
            f"(latency {record.global_latency:5.2f} delta)"
        )

    print()
    print(f"all commands replicated everywhere: {result.all_commands_learned_everywhere}")
    print(f"replica state machines identical  : {result.replicas_agree}")
    print(f"decided log prefix per replica    : {result.prefix_lengths}")

    late = [rec.global_latency for cid, rec in result.commands.items() if cid.startswith("late-")]
    print(f"stable-period write latency        : worst {max(late):.2f} delta "
          f"(~3 message delays, as the paper's stable case predicts)")


if __name__ == "__main__":
    main()
