#!/usr/bin/env python3
"""Scenario: side-by-side protocol comparison on one hostile workload.

Runs all five protocols in the repository (the paper's Modified Paxos, the
Modified B-Consensus sketch, the original B-Consensus, Ω-driven traditional
Paxos, and the rotating-coordinator algorithm) over the *same* sequence of
pre-stabilization chaos workloads, and prints a small table of post-``TS``
decision lags and message counts.  This is a scripted, smaller sibling of
experiment E8.

Run with::

    python examples/protocol_shootout.py
"""

from repro import TimingParams, partitioned_chaos_scenario, run_scenario
from repro.consensus.registry import default_registry
from repro.core.timing import decision_bound
from repro.harness.tables import render_table

N = 9
SEEDS = (11, 12, 13)
PARAMS = TimingParams(delta=1.0, rho=0.01, epsilon=0.5)


def main() -> None:
    registry = default_registry()
    rows = []
    for protocol in registry.names():
        lags = []
        messages = []
        for seed in SEEDS:
            scenario = partitioned_chaos_scenario(N, params=PARAMS, ts=10.0, seed=seed)
            result = run_scenario(scenario, protocol, registry=registry)
            if not result.safety.valid:
                raise AssertionError(f"{protocol} violated safety: {result.safety.violations}")
            lag = result.max_lag_after_ts()
            lags.append(lag if lag is not None else float("nan"))
            messages.append(result.metrics.messages_sent)
        rows.append(
            [
                protocol,
                f"{min(lags):.2f}",
                f"{max(lags):.2f}",
                f"{sum(messages) // len(messages)}",
            ]
        )

    print(f"n={N}, {len(SEEDS)} seeds, partitioned chaos before TS, delta=1")
    print(f"Modified Paxos analytic bound: {decision_bound(PARAMS):.1f} delta")
    print()
    print(
        render_table(
            ["protocol", "best lag (delta)", "worst lag (delta)", "avg messages"], rows
        )
    )
    print()
    print(
        "Note: under this generic workload even the baselines can be quick — their O(N*delta) "
        "behaviour needs their specific worst cases (see experiments E2 and E3, or "
        "examples/replicated_lock_service.py)."
    )


if __name__ == "__main__":
    main()
