#!/usr/bin/env python3
"""Scenario: side-by-side protocol comparison on one hostile workload.

Runs all registered protocols over the *same* sequence of
pre-stabilization chaos workloads — declared once as an
:class:`ExperimentSpec` over the ``partitioned-chaos`` registry workload —
and prints a small table of post-``TS`` decision lags and message counts.
This is a scripted, smaller sibling of experiment E8.

Run with::

    python examples/protocol_shootout.py [--jobs N]

``--jobs 4`` fans the (protocol, seed) runs out over four worker
processes; the results are identical to a serial run because every
simulation is seeded and deterministic.
"""

import argparse

from repro import (
    ExperimentSpec,
    TimingParams,
    default_registry,
    lag_delta,
    run_experiment,
)
from repro.core.timing import decision_bound
from repro.harness.tables import render_table

N = 9
SEEDS = (11, 12, 13)
PARAMS = TimingParams(delta=1.0, rho=0.01, epsilon=0.5)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (1 = serial)")
    args = parser.parse_args()

    spec = ExperimentSpec(
        workload="partitioned-chaos",
        protocols=tuple(default_registry().names()),
        seeds=SEEDS,
        base={"n": N, "params": PARAMS, "ts": 10.0},
    )
    results = run_experiment(spec, jobs=args.jobs)

    def fmt(value):
        return f"{value:.2f}" if value is not None else "undecided"

    rows = []
    for (protocol,), subset in results.group_by("protocol").items():
        unsafe = [row for row in subset if not row.outcome.extra["safety_valid"]]
        if unsafe:
            raise AssertionError(f"{protocol} violated safety")
        rows.append(
            [
                protocol,
                fmt(subset.min(lag_delta)),
                fmt(subset.max(lag_delta)),
                f"{int(subset.total(lambda row: row.outcome.messages_sent)) // len(subset)}",
            ]
        )

    print(f"n={N}, {len(SEEDS)} seeds, partitioned chaos before TS, delta=1, "
          f"jobs={args.jobs}")
    print(f"Modified Paxos analytic bound: {decision_bound(PARAMS):.1f} delta")
    print()
    print(
        render_table(
            ["protocol", "best lag (delta)", "worst lag (delta)", "avg messages"], rows
        )
    )
    print()
    print(
        "Note: under this generic workload even the baselines can be quick — their O(N*delta) "
        "behaviour needs their specific worst cases (see experiments E2 and E3, or "
        "examples/replicated_lock_service.py)."
    )


if __name__ == "__main__":
    main()
