#!/usr/bin/env python3
"""Resumable campaigns: persist every run, resume for free, query afterwards.

The results subsystem (:mod:`repro.results`) makes run output durable:

1. run a protocol grid with a ``store`` — every run streams a
   schema-versioned :class:`~repro.results.record.RunRecord` into a
   ``JsonlStore`` under its content key as it completes;
2. run the *same* grid again with ``resume=True`` — every run is a cache
   hit, zero simulations execute, and the result set (and any table built
   from it) is identical;
3. query the store afterwards: records flow back into a
   :class:`~repro.harness.experiment.ResultSet`, so the usual tag filters
   and aggregations work on data that outlived the process that made it.

A campaign killed midway behaves the same way: completed runs are already
on disk, so the re-invocation executes only the missing cells.

Run with::

    python examples/resumable_campaign.py
"""

import os
import tempfile
import time

from repro.harness.experiment import ExperimentSpec, lag_delta, run_experiment
from repro.harness.tables import ExperimentTable
from repro.params import TimingParams
from repro.results import lag_aggregates, open_store


def main() -> None:
    params = TimingParams(delta=1.0, rho=0.01, epsilon=0.5)
    spec = ExperimentSpec(
        workload="partitioned-chaos",
        protocols=("modified-paxos", "traditional-paxos"),
        seeds=(1, 2),
        base={"params": params, "ts": 10.0},
        grid={"n": (3, 5, 7)},
    )

    store_path = os.path.join(tempfile.mkdtemp(prefix="repro-campaign-"), "runs.jsonl")

    started = time.perf_counter()
    fresh = run_experiment(spec, store=store_path)
    fresh_wall = time.perf_counter() - started
    print(f"fresh run    : {len(fresh)} simulations in {fresh_wall:.2f}s -> {store_path}")

    started = time.perf_counter()
    resumed = run_experiment(spec, store=store_path, resume=True)
    resumed_wall = time.perf_counter() - started
    print(f"resumed run  : {len(resumed)} rows in {resumed_wall:.3f}s (all cache hits)")

    table = ExperimentTable.from_result_set(
        resumed,
        experiment="DEMO",
        title="Decision lag after TS from stored records (delta units)",
        group=("protocol", "n"),
        columns={"runs": len, "max_lag_delta": lambda subset: subset.max(lag_delta)},
    )
    print()
    print(table.render())

    # The store is a first-class queryable artifact, independent of the spec.
    with open_store(store_path) as store:
        slow = store.query(where=lambda record: (record.lag_delta or 0.0) > 3.0)
        print()
        print(f"stored records with lag > 3 delta: {len(slow)} of {len(store)}")
        for (protocol, workload), aggregate in lag_aggregates(store.records()).items():
            print(f"  {aggregate.describe()}")

    assert resumed_wall < fresh_wall, "cache hits should be much cheaper than simulating"


if __name__ == "__main__":
    main()
